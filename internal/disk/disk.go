package disk

import (
	"perfiso/internal/core"
	"perfiso/internal/profile"
	"perfiso/internal/sim"
	"perfiso/internal/stats"
)

// SPUStats aggregates per-SPU statistics for one disk.
type SPUStats struct {
	Requests int64
	Sectors  int64
	Wait     stats.Sample // seconds in queue per request
	Service  stats.Sample // seconds in service per request
	Seek     stats.Sample // seconds of seek per request
	Pos      stats.Sample // seconds of positioning (seek+rotation)
}

// Stats aggregates whole-disk statistics.
type Stats struct {
	Requests int64
	Sectors  int64
	Merges   int64 // requests coalesced into a queued neighbour
	Failures int64 // transfers failed by an injected fault
	Wait     stats.Sample
	Service  stats.Sample
	Seek     stats.Sample
	Pos      stats.Sample       // positioning latency (seek+rotation)
	Busy     stats.TimeWeighted // 1 while servicing, 0 while idle
	QueueLen stats.TimeWeighted
}

// MaxMergeSectors caps the size of a coalesced request (128 KB).
const MaxMergeSectors = 256

// Disk is one simulated drive: a mechanical model, a request queue, a
// scheduling policy, and per-SPU bandwidth accounting.
type Disk struct {
	eng    *sim.Engine
	params Params
	sched  Scheduler

	queue   []*Request
	busy    bool
	headCyl int
	lastEnd int64 // sector after the previous transfer (track-buffer hit)
	// lastXferFinish is when the previous transfer left the media. The
	// track-buffer sequential hit is only honoured within one rotation of
	// this instant: the read-ahead data in the buffer is overwritten as
	// the platter keeps spinning, so after an idle gap the head must wait
	// for the sector like any other request.
	lastXferFinish sim.Time

	// Fault injection (internal/fault): slow inflates every service time
	// by the given factor; failProb fails transfers with the given
	// probability, drawn from failRNG so runs stay deterministic.
	slow     float64
	failProb float64
	failRNG  *sim.RNG

	// Merge enables request coalescing: a submitted request adjacent to
	// a queued request of the same kind and SPU extends it instead of
	// queueing separately (up to MaxMergeSectors). Off by default — the
	// paper's request counts assume the unmerged IRIX 5.3 driver.
	Merge bool

	usage *usageTable

	// completeName labels this disk's completion events. SetLabel gives
	// each disk a distinct name ("disk0.complete") so the simulator
	// observability layer (internal/simobs) can tag completions with a
	// per-disk resource domain; the default is the shared "disk.complete".
	completeName string

	// Profile, when non-nil, receives request span trees, the
	// queue-theft blame pass, and the completion windows that let
	// waiters split their stalls into queue/service/backoff time. Nil
	// costs nothing.
	Profile *profile.Profiler

	Total  Stats
	PerSPU map[core.SPUID]*SPUStats
}

// New creates a disk on the given engine with the given mechanical
// parameters and scheduling policy. halfLife configures the bandwidth
// usage decay (0 means the paper's 500 ms).
func New(eng *sim.Engine, p Params, sched Scheduler, halfLife sim.Time) *Disk {
	return &Disk{
		eng:          eng,
		params:       p,
		sched:        sched,
		usage:        newUsageTable(halfLife),
		completeName: "disk.complete",
		PerSPU:       make(map[core.SPUID]*SPUStats),
	}
}

// SetLabel names the disk; its completion events become "<label>.complete"
// so each disk is its own resource domain in simulator telemetry. Call
// before the first request is submitted.
func (d *Disk) SetLabel(label string) { d.completeName = label + ".complete" }

// Params returns the disk's mechanical parameters.
func (d *Disk) Params() Params { return d.params }

// Scheduler returns the active scheduling policy.
func (d *Disk) Scheduler() Scheduler { return d.sched }

// SetScheduler replaces the scheduling policy (before or between runs).
func (d *Disk) SetScheduler(s Scheduler) { d.sched = s }

// SetShare sets an SPU's bandwidth share weight on this disk.
func (d *Disk) SetShare(id core.SPUID, w float64) { d.usage.setShare(id, w) }

// Usage returns an SPU's decayed sector count at the current time,
// relative to its share. Exposed for tests and for the ablation harness.
func (d *Disk) Usage(id core.SPUID) float64 {
	return d.usage.relative(d.eng.Now(), id)
}

// SetSlow degrades (or restores) the drive: every subsequent service
// time is multiplied by factor. factor <= 1 restores nominal speed.
func (d *Disk) SetSlow(factor float64) {
	if factor < 1 {
		factor = 1
	}
	d.slow = factor
}

// Slow returns the current service-time inflation factor (1 = nominal).
func (d *Disk) Slow() float64 {
	if d.slow < 1 {
		return 1
	}
	return d.slow
}

// SetFault makes each subsequent transfer fail with probability prob,
// drawing from rng (fork a dedicated stream so the decisions do not
// perturb other consumers). prob <= 0 clears the fault. Failed requests
// consume service time and bandwidth but complete with Failed set.
func (d *Disk) SetFault(prob float64, rng *sim.RNG) {
	if prob <= 0 {
		d.failProb, d.failRNG = 0, nil
		return
	}
	d.failProb, d.failRNG = prob, rng
}

// FailProb returns the current transient-failure probability.
func (d *Disk) FailProb() float64 { return d.failProb }

// QueueLen returns the number of requests waiting (not in service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// QueuedFor returns the number of waiting requests charged to the SPU —
// the per-SPU queue depth the observability layer samples.
func (d *Disk) QueuedFor(id core.SPUID) int {
	n := 0
	for _, r := range d.queue {
		if r.SPU == id {
			n++
		}
	}
	return n
}

// SectorsFor returns the cumulative sectors transferred for the SPU.
func (d *Disk) SectorsFor(id core.SPUID) int64 {
	if s, ok := d.PerSPU[id]; ok {
		return s.Sectors
	}
	return 0
}

// Busy reports whether a request is currently in service.
func (d *Disk) Busy() bool { return d.busy }

// HeadCylinder returns the cylinder the head is currently over.
func (d *Disk) HeadCylinder() int { return d.headCyl }

func (d *Disk) spuStats(id core.SPUID) *SPUStats {
	s, ok := d.PerSPU[id]
	if !ok {
		s = &SPUStats{}
		d.PerSPU[id] = s
	}
	return s
}

// Submit enqueues a request. Invalid requests panic: they indicate a bug
// in the file system layer, not a condition a real driver would see.
func (d *Disk) Submit(r *Request) {
	if err := r.validate(d.params); err != nil {
		panic(err)
	}
	r.Submitted = d.eng.Now()
	r.Failed = false
	if d.Merge && d.tryMerge(r) {
		return
	}
	d.queue = append(d.queue, r)
	d.Total.QueueLen.Set(d.eng.Now(), float64(len(d.queue)))
	if !d.busy {
		d.startNext()
	}
}

// tryMerge coalesces r into an adjacent queued request of the same kind
// and SPU. Requests with charge-back lists are never merged (their
// accounting is already aggregated). Reports whether r was absorbed.
func (d *Disk) tryMerge(r *Request) bool {
	if len(r.Charges) > 0 {
		return false
	}
	for _, q := range d.queue {
		if q.Kind != r.Kind || q.SPU != r.SPU || len(q.Charges) > 0 {
			continue
		}
		if q.Count+r.Count > MaxMergeSectors {
			continue
		}
		var merged bool
		switch {
		case q.Sector+int64(q.Count) == r.Sector: // r extends q forward
			q.Count += r.Count
			merged = true
		case r.Sector+int64(r.Count) == q.Sector: // r prepends to q
			q.Sector = r.Sector
			q.Count += r.Count
			merged = true
		}
		if !merged {
			continue
		}
		d.Total.Merges++
		done := r.Done
		prev := q.Done
		q.Done = func(qq *Request) {
			if prev != nil {
				prev(qq)
			}
			// The absorbed request completes with its host. It was a
			// real request with a real queueing delay and completion
			// time, so it counts in the latency statistics like any
			// other (its sectors are already counted via the host's
			// grown Count). Failed hosts fail their passengers too.
			r.Started = qq.Started
			r.Finished = qq.Finished
			r.SeekTime = qq.SeekTime
			r.RotTime = qq.RotTime
			r.Failed = qq.Failed
			if !r.Failed {
				d.Total.Requests++
				d.Total.Wait.AddTime(r.Wait())
				d.Total.Service.AddTime(r.Service())
				s := d.spuStats(r.SPU)
				s.Requests++
				s.Wait.AddTime(r.Wait())
				s.Service.AddTime(r.Service())
			}
			if done != nil {
				done(r)
			}
		}
		return true
	}
	return false
}

// startNext pulls the next request per the scheduling policy and begins
// service. Caller guarantees the disk is idle.
func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		d.Total.Busy.Set(d.eng.Now(), 0)
		return
	}
	idx := d.sched.pick(d)
	r := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	now := d.eng.Now()
	d.Total.QueueLen.Set(now, float64(len(d.queue)))
	d.busy = true
	d.Total.Busy.Set(now, 1)

	r.Started = now
	targetCyl := d.params.CylinderOf(r.Sector)
	seek := d.params.SeekTime(d.headCyl, targetCyl)
	r.SeekTime = seek
	settled := now + d.params.Overhead + seek
	rot := d.params.RotationalDelay(settled, r.Sector)
	if r.Sector == d.lastEnd && now-d.lastXferFinish <= d.params.RotationTime() {
		// Exact sequential continuation: the drive's track buffer and
		// read-ahead absorb the command-overhead gap, so streaming IO
		// does not pay a near-full rotation per request. The buffered
		// data only survives about one revolution past the previous
		// transfer — after a longer idle gap the read-ahead has been
		// overwritten and the request pays normal rotational delay.
		rot = 0
	}
	r.RotTime = rot
	xfer := d.params.TransferTime(r.Sector, r.Count)
	total := d.params.Overhead + seek + rot + xfer
	if d.slow > 1 {
		// Degraded drive (fault injection): everything — positioning,
		// media rate, controller — runs slower by the same factor.
		total = sim.Time(float64(total) * d.slow)
	}
	if d.failProb > 0 && d.failRNG != nil && d.failRNG.Float64() < d.failProb {
		r.Failed = true
	}

	if d.Profile != nil {
		// Blame pass: every queued request of another SPU now waits the
		// whole service time of r because the scheduler chose r first.
		// This is the only source of disk theft in the interference
		// matrix (a waiter's own queue-time split must not double it).
		for _, q := range d.queue {
			if q.SPU != r.SPU {
				d.Profile.AddTheft(q.SPU, r.SPU, profile.Disk, total)
				q.StolenBy = r.SPU
			}
		}
	}

	d.eng.CallAfter(total, d.completeName, func() { d.complete(r) })
	// The head ends up over the last cylinder touched by the transfer.
	d.headCyl = d.params.CylinderOf(r.Sector + int64(r.Count) - 1)
	d.lastEnd = r.Sector + int64(r.Count)
	d.lastXferFinish = now + total
}

// complete finishes a request: accounting, statistics, callback, and
// kicking off the next request.
func (d *Disk) complete(r *Request) {
	now := d.eng.Now()
	r.Finished = now

	// Bandwidth accounting (§3.3). Shared requests are charged back to
	// the owning user SPUs once the transfer is done.
	if len(r.Charges) > 0 {
		for _, c := range r.Charges {
			d.usage.charge(now, c.SPU, c.Sectors)
		}
	} else {
		d.usage.charge(now, r.SPU, r.Count)
	}

	if r.Failed {
		// A failed transfer occupied the arm and consumed the SPU's
		// bandwidth share (charged above) but moved no usable data; it
		// is counted as a failure, not as a completed request, so the
		// latency percentiles describe successful transfers only. The
		// submitter sees Failed via Done and retries.
		d.Total.Failures++
	} else {
		d.Total.Requests++
		d.Total.Sectors += int64(r.Count)
		d.Total.Wait.AddTime(r.Wait())
		d.Total.Service.AddTime(r.Service())
		d.Total.Seek.AddTime(r.SeekTime)
		d.Total.Pos.AddTime(r.Positioning())
		s := d.spuStats(r.SPU)
		s.Requests++
		s.Sectors += int64(r.Count)
		s.Wait.AddTime(r.Wait())
		s.Service.AddTime(r.Service())
		s.Seek.AddTime(r.SeekTime)
		s.Pos.AddTime(r.Positioning())
	}

	done := r.Done
	var flowID int64
	if d.Profile != nil && !r.Failed {
		flowID = d.Profile.DiskSpans(r.SPU, r.Kind.String(), r.Submitted, r.Started, r.Finished, r.stolenBy())
	}
	d.startNext()
	if done == nil {
		return
	}
	if d.Profile != nil && !r.Failed {
		// Everything done(r) resumes synchronously waited on exactly
		// this transfer: publish its timing as the completion window so
		// closing DiskWait segments can split into queue/service/backoff
		// and link back to the service span as a flow.
		d.Profile.BeginDiskWindow(r.Started, r.Finished, r.Backoff, r.stolenBy(), flowID)
		done(r)
		d.Profile.EndDiskWindow()
		return
	}
	done(r)
}

// stolenBy returns the SPU to blame for the request's queueing delay:
// the last SPU served ahead of it, or its own SPU if never displaced.
func (r *Request) stolenBy() core.SPUID {
	if r.StolenBy == core.KernelID {
		return r.SPU
	}
	return r.StolenBy
}

// Utilization returns the fraction of time the disk has been busy.
func (d *Disk) Utilization() float64 {
	return d.Total.Busy.Average(d.eng.Now())
}

package disk

import (
	"fmt"
	"sort"

	"perfiso/internal/core"
	"perfiso/internal/snap"
)

// Audit verifies the disk's accounting invariants and returns the first
// violation found:
//
//   - the time-weighted queue-length and busy trackers agree with the
//     actual queue and service state,
//   - per-SPU request and sector counts sum to the whole-disk totals
//     (merged passengers count on both sides; failed transfers on
//     neither),
//   - every queued request still addresses sectors on the disk,
//   - the head is over a real cylinder.
func (d *Disk) Audit() error {
	if got := int(d.Total.QueueLen.Value()); got != len(d.queue) {
		return fmt.Errorf("disk audit: queue-length tracker reads %d, queue holds %d", got, len(d.queue))
	}
	if tracked := d.Total.Busy.Value() != 0; tracked != d.busy {
		return fmt.Errorf("disk audit: busy tracker reads %v, busy flag is %v", tracked, d.busy)
	}
	var reqs, sectors int64
	for _, s := range d.PerSPU {
		reqs += s.Requests
		sectors += s.Sectors
	}
	if reqs != d.Total.Requests {
		return fmt.Errorf("disk audit: per-SPU requests sum to %d, total says %d", reqs, d.Total.Requests)
	}
	if sectors != d.Total.Sectors {
		return fmt.Errorf("disk audit: per-SPU sectors sum to %d, total says %d", sectors, d.Total.Sectors)
	}
	for _, r := range d.queue {
		if err := r.validate(d.params); err != nil {
			return fmt.Errorf("disk audit: queued request invalid: %w", err)
		}
	}
	if d.headCyl < 0 || d.headCyl >= d.params.Cylinders {
		return fmt.Errorf("disk audit: head over cylinder %d of %d", d.headCyl, d.params.Cylinders)
	}
	return nil
}

// Snapshot writes the disk's state for checkpoint comparison: totals,
// mechanical position, and per-SPU transfer counts.
func (d *Disk) Snapshot(enc *snap.Encoder) {
	enc.Section("disk")
	enc.Int("requests", d.Total.Requests)
	enc.Int("sectors", d.Total.Sectors)
	enc.Int("merges", d.Total.Merges)
	enc.Int("failures", d.Total.Failures)
	enc.Int("wait_n", d.Total.Wait.N())
	enc.Float("wait_sum", d.Total.Wait.Sum())
	enc.Int("service_n", d.Total.Service.N())
	enc.Float("service_sum", d.Total.Service.Sum())
	enc.Int("queue", int64(len(d.queue)))
	enc.Bool("busy", d.busy)
	enc.Int("head_cyl", int64(d.headCyl))
	enc.Int("last_end", d.lastEnd)
	ids := make([]core.SPUID, 0, len(d.PerSPU))
	for id := range d.PerSPU {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s := d.PerSPU[id]
		enc.Str(fmt.Sprintf("spu%d", id), fmt.Sprintf("requests=%d sectors=%d", s.Requests, s.Sectors))
	}
}

package disk

import (
	"testing"
	"testing/quick"

	"perfiso/internal/core"
	"perfiso/internal/sim"
)

// Property: no starvation — with any finite set of requests from any
// mix of SPUs, every scheduler completes every request.
func TestPropertyNoStarvation(t *testing.T) {
	scheds := []func() Scheduler{
		func() Scheduler { return NewPos() },
		func() Scheduler { return NewIso() },
		func() Scheduler { return NewPIso(0) },
	}
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%60 + 1
		for _, mk := range scheds {
			eng := sim.NewEngine()
			d := New(eng, HP97560(), mk(), 0)
			rng := sim.NewRNG(seed)
			completed := 0
			for i := 0; i < n; i++ {
				sector := rng.Int63n(d.Params().TotalSectors() - 64)
				spu := core.FirstUserID + core.SPUID(rng.Intn(3))
				kind := Read
				if rng.Intn(2) == 0 {
					kind = Write
				}
				// Stagger submissions so the queue sees varied states.
				at := sim.Time(rng.Intn(200)) * sim.Millisecond
				eng.At(at, "submit", func() {
					d.Submit(&Request{Kind: kind, Sector: sector, Count: 1 + rng.Intn(32),
						SPU: spu, Done: func(*Request) { completed++ }})
				})
			}
			eng.Run()
			if completed != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: per-request timing sanity — Started >= Submitted,
// Finished > Started, and the service floor (overhead + transfer) holds
// for every request under every scheduler.
func TestPropertyTimingSanity(t *testing.T) {
	f := func(seed uint64) bool {
		eng := sim.NewEngine()
		d := New(eng, HP97560(), NewPIso(64), 0)
		rng := sim.NewRNG(seed)
		ok := true
		for i := 0; i < 40; i++ {
			count := 1 + rng.Intn(64)
			sector := rng.Int63n(d.Params().TotalSectors() - int64(count))
			d.Submit(&Request{Kind: Read, Sector: sector, Count: count,
				SPU: core.FirstUserID + core.SPUID(rng.Intn(2)),
				Done: func(r *Request) {
					if r.Started < r.Submitted || r.Finished <= r.Started {
						ok = false
					}
					floor := d.Params().Overhead + d.Params().TransferTime(r.Sector, r.Count)
					if r.Service() < floor {
						ok = false
					}
				}})
		}
		eng.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the disk serves exactly one request at a time — total busy
// time equals the sum of service times.
func TestPropertySerialService(t *testing.T) {
	eng := sim.NewEngine()
	d := New(eng, HP97560(), NewPos(), 0)
	rng := sim.NewRNG(99)
	var sumService sim.Time
	for i := 0; i < 100; i++ {
		sector := rng.Int63n(d.Params().TotalSectors() - 64)
		d.Submit(&Request{Kind: Read, Sector: sector, Count: 8, SPU: core.FirstUserID,
			Done: func(r *Request) { sumService += r.Service() }})
	}
	eng.Run()
	busy := sim.FromSeconds(d.Total.Busy.Average(eng.Now()) * eng.Now().Seconds())
	diff := busy - sumService
	if diff < 0 {
		diff = -diff
	}
	if diff > sim.Millisecond {
		t.Fatalf("busy time %v != sum of service %v", busy, sumService)
	}
}

// Package snap provides deterministic, human-diffable state snapshots
// for the checkpoint/replay machinery. A snapshot is a flat text
// document of "key=value" lines grouped into "[section]" headers; two
// runs of the simulator are in the same state exactly when their
// snapshots are byte-identical. The text form is deliberate: when a
// replay diverges, diffing two snapshots localizes the first divergent
// subsystem and field, which a hash or opaque gob never could.
//
// The encoder depends on nothing above the standard library so every
// layer of the simulator (sim, sched, mem, disk, fault, kernel) can
// implement Snapshotter without import cycles; times are passed as
// int64 nanoseconds for the same reason.
package snap

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
)

// Snapshotter is implemented by every subsystem that contributes state
// to a checkpoint. Implementations must be read-only and deterministic:
// iterate maps in sorted key order, format floats with Encoder.Float,
// and never consult wall-clock time or unforked randomness.
type Snapshotter interface {
	Snapshot(enc *Encoder)
}

// Encoder accumulates one snapshot document.
type Encoder struct {
	b bytes.Buffer
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Section starts a named section. Sections exist for the human reading
// a divergence diff; the byte-identity contract does not care.
func (e *Encoder) Section(name string) {
	fmt.Fprintf(&e.b, "[%s]\n", name)
}

// Str records a string value. Values must not contain newlines.
func (e *Encoder) Str(key, v string) {
	fmt.Fprintf(&e.b, "%s=%s\n", key, v)
}

// Int records a signed integer (including sim.Time nanoseconds).
func (e *Encoder) Int(key string, v int64) {
	fmt.Fprintf(&e.b, "%s=%d\n", key, v)
}

// Uint records an unsigned integer.
func (e *Encoder) Uint(key string, v uint64) {
	fmt.Fprintf(&e.b, "%s=%d\n", key, v)
}

// Bool records a boolean.
func (e *Encoder) Bool(key string, v bool) {
	fmt.Fprintf(&e.b, "%s=%t\n", key, v)
}

// Float records a float with the shortest round-trippable formatting,
// so equal values always render to equal bytes.
func (e *Encoder) Float(key string, v float64) {
	fmt.Fprintf(&e.b, "%s=%s\n", key, strconv.FormatFloat(v, 'g', -1, 64))
}

// SortedInts records an int64-valued map in sorted key order. Map
// iteration order is the classic source of nondeterministic snapshots;
// funnel every map through this (or sort keys by hand).
func (e *Encoder) SortedInts(prefix string, m map[int]int64) {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		e.Int(fmt.Sprintf("%s%d", prefix, k), m[k])
	}
}

// Bytes returns the snapshot document accumulated so far.
func (e *Encoder) Bytes() []byte { return e.b.Bytes() }

// Sum returns a short hex digest of the document — a compact identity
// for log lines and repro commands ("state abc123 at t=1.5s").
func (e *Encoder) Sum() string {
	h := fnv.New64a()
	h.Write(e.b.Bytes())
	return fmt.Sprintf("%016x", h.Sum64())
}

// Take runs each snapshotter in order into a fresh encoder and returns
// the document. Nil snapshotters are skipped so optional subsystems
// (e.g. a fault injector that was never configured) need no caller-side
// branching.
func Take(parts ...Snapshotter) []byte {
	enc := NewEncoder()
	for _, p := range parts {
		if p == nil {
			continue
		}
		p.Snapshot(enc)
	}
	return enc.Bytes()
}

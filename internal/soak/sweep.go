package soak

import (
	"fmt"
	"io"
)

// Sweep runs cases [0, runs) of the seed's soak matrix, shrinking and
// reporting every failure to w. It returns the number of failing
// cases; 0 means the seed's whole sweep held every invariant.
func Sweep(w io.Writer, seed uint64, runs int) int {
	failures := 0
	for i := 0; i < runs; i++ {
		c := NewCase(seed, i)
		res := Run(c)
		if !res.Failed() {
			fmt.Fprintf(w, "soak case %d/%d seed=%d scheme=%v spus=%d faults=%d: %s\n",
				i+1, runs, seed, c.Scheme, c.SPUs, len(c.Faults.Events), res.Summary())
			continue
		}
		failures++
		fmt.Fprintf(w, "soak case %d/%d seed=%d FAILED: %s\n", i+1, runs, seed, res.Summary())
		minimal, tests := Shrink(c, res)
		fmt.Fprintf(w, "  shrunk %d -> %d fault(s) in %d replay(s)\n",
			len(c.Faults.Events), len(minimal.Faults.Events), tests)
		fmt.Fprintf(w, "  repro: %s\n", minimal.ReproCommand())
	}
	return failures
}

// RunOne replays a single case — the repro path — reporting to w and
// returning true when it still fails.
func RunOne(w io.Writer, c Case) bool {
	res := Run(c)
	fmt.Fprintf(w, "soak case seed=%d index=%d scheme=%v spus=%d faults=%q: %s\n",
		c.Seed, c.Index, c.Scheme, c.SPUs, c.Faults.String(), res.Summary())
	for i, v := range res.Violations {
		if i >= 5 {
			fmt.Fprintf(w, "  ... %d more violations\n", len(res.Violations)-i)
			break
		}
		fmt.Fprintf(w, "  %s\n", v.Error())
	}
	return res.Failed()
}

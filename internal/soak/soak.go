// Package soak is the chaos-soak harness: it derives randomized
// scenario × fault × workload cases from a seed, runs each under the
// invariant auditor and watchdog, and — when a case fails — shrinks its
// fault schedule to a minimal reproducer by delta-debugging over
// checkpoint-bounded replays.
//
// Everything is deterministic from (seed, case index): the same seed
// always generates, fails, and shrinks the same way, so a one-line
// rerun command is a complete bug report.
package soak

import (
	"fmt"
	"runtime/debug"

	"perfiso/internal/core"
	"perfiso/internal/fault"
	"perfiso/internal/invariant"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/sim"
	"perfiso/internal/workload"
)

// Case is one generated soak scenario: a small machine, a scheme, a
// couple of SPUs running scaled-down pmake trees, and a fault plan.
type Case struct {
	Seed  uint64
	Index int

	Scheme core.Scheme
	SPUs   int
	Pmake  workload.PmakeParams
	Faults *fault.Plan

	// sabotage is the test hook proving the pipeline end to end: when
	// set, the run corrupts frame accounting 1 ms after the plan's
	// first mem-loss fault fires, so the auditor must trip and the
	// shrinker must isolate exactly that mem-loss event.
	sabotage bool
}

// Horizon bounds each soak run; cases are sized to finish well inside
// it, so hitting the horizon is itself a failure (reported as a panic).
const Horizon = 60 * sim.Second

// maxFaults bounds the generated schedule length.
const maxFaults = 4

var schemes = []core.Scheme{core.SMP, core.Quo, core.PIso}

// NewCase derives case #index of a soak sweep deterministically from
// the seed. Distinct indices give independent streams; the same
// (seed, index) is always the same case.
func NewCase(seed uint64, index int) Case {
	// Splitmix-style decorrelation so case 1 is not case 0 shifted.
	rng := sim.NewRNG(seed ^ (uint64(index)+1)*0x9e3779b97f4a7c15)
	c := Case{
		Seed:   seed,
		Index:  index,
		Scheme: schemes[rng.Intn(len(schemes))],
		SPUs:   2 + rng.Intn(2),
		Pmake: workload.PmakeParams{
			Parallel:        1 + rng.Intn(2),
			FilesPerCompile: 2 + rng.Intn(3),
			ComputePerFile:  rng.Duration(20*sim.Millisecond, 60*sim.Millisecond),
			WSSPages:        100 + rng.Intn(301),
			SrcBytes:        64 * 1024,
			ObjBytes:        32 * 1024,
		},
		Faults: randomPlan(rng),
	}
	return c
}

// randomPlan generates 1..maxFaults transient faults for the
// memory-isolation machine (4 CPUs, 2 disks), each inside the ranges
// fault.ParsePlan would accept. At most two distinct CPUs are ever
// taken offline so the machine always keeps CPUs.
func randomPlan(rng *sim.RNG) *fault.Plan {
	cfg := machine.MemoryIsolation()
	n := 1 + rng.Intn(maxFaults)
	offTargets := map[int]bool{}
	var p fault.Plan
	for i := 0; i < n; i++ {
		e := fault.Event{
			At:       rng.Duration(0, 800*sim.Millisecond),
			Duration: rng.Duration(100*sim.Millisecond, 600*sim.Millisecond),
		}
		switch fault.Kind(rng.Intn(5)) {
		case fault.DiskSlow:
			e.Kind, e.Target = fault.DiskSlow, rng.Intn(len(cfg.Disks))
			e.Severity = 1 + 4*rng.Float64()
		case fault.DiskFail:
			e.Kind, e.Target = fault.DiskFail, rng.Intn(len(cfg.Disks))
			e.Severity = 0.05 + 0.45*rng.Float64()
		case fault.CPUSlow:
			e.Kind, e.Target = fault.CPUSlow, rng.Intn(cfg.CPUs)
			e.Severity = 0.2 + 0.6*rng.Float64()
		case fault.CPUOffline:
			t := rng.Intn(cfg.CPUs)
			if !offTargets[t] && len(offTargets) >= 2 {
				// Would risk offlining too much of the machine; degrade
				// to a straggler on the same CPU instead.
				e.Kind, e.Target, e.Severity = fault.CPUSlow, t, 0.5
				break
			}
			offTargets[t] = true
			e.Kind, e.Target = fault.CPUOffline, t
		case fault.MemLoss:
			e.Kind, e.Target = fault.MemLoss, 0
			e.Severity = 0.2 + 0.2*rng.Float64()
		}
		p.Events = append(p.Events, e)
	}
	return &p
}

// Result is one soak run's outcome.
type Result struct {
	Case       Case
	End        sim.Time // completion time; 0 when the run died early
	Violations []invariant.Violation
	Trip       *invariant.TripError
	Panic      string // non-watchdog panic (with stack), "" if none
}

// Failed reports whether the run found anything wrong.
func (r *Result) Failed() bool {
	return len(r.Violations) > 0 || r.Trip != nil || r.Panic != ""
}

// FirstFailureAt returns the simulation time of the earliest failure
// signal, or 0 when none carries a time (plain panic).
func (r *Result) FirstFailureAt() sim.Time {
	var at sim.Time
	if len(r.Violations) > 0 {
		at = r.Violations[0].At
	}
	if r.Trip != nil && (at == 0 || r.Trip.At < at) {
		at = r.Trip.At
	}
	return at
}

// Summary renders the failure in one line.
func (r *Result) Summary() string {
	switch {
	case len(r.Violations) > 0:
		return r.Violations[0].Error()
	case r.Trip != nil:
		return r.Trip.Error()
	case r.Panic != "":
		return "panic: " + firstLine(r.Panic)
	default:
		return fmt.Sprintf("ok in %v", r.End)
	}
}

func firstLine(s string) string {
	for i, c := range s {
		if c == '\n' {
			return s[:i]
		}
	}
	return s
}

// Run executes the case to completion under the auditor (collect mode)
// and watchdog, recovering any panic into the result.
func Run(c Case) *Result { return run(c, 0) }

// run executes the case; until > 0 stops at that instant instead of
// running to completion — the shrinker replays candidate schedules only
// up to just past the original failure time, so shrinking a long run
// costs checkpoint-replay time, not full-run time.
func run(c Case, until sim.Time) (res *Result) {
	res = &Result{Case: c}
	defer func() {
		r := recover()
		switch v := r.(type) {
		case nil:
		case *invariant.TripError:
			res.Trip = v
		case invariant.Violation:
			// Collect mode should swallow these; a panic means fail-fast
			// was on — still a failure, just record it.
			res.Violations = append(res.Violations, v)
		default:
			res.Panic = fmt.Sprintf("%v\n%s", v, debug.Stack())
		}
	}()

	k := kernel.New(machine.MemoryIsolation(), c.Scheme, kernel.Options{
		Seed:         c.Seed ^ uint64(c.Index)<<32,
		Faults:       c.Faults,
		AuditCollect: true,
		Horizon:      Horizon,
	})
	spus := make([]*core.SPU, c.SPUs)
	for i := range spus {
		spus[i] = k.NewSPU(fmt.Sprintf("u%d", i), 1)
	}
	k.Boot()
	if c.sabotage {
		if at, ok := firstMemLoss(c.Faults); ok {
			k.Engine().Call(at+sim.Millisecond, "soak.sabotage", func() {
				k.SPUs().Shared().Charge(core.Memory, 1)
			})
		}
	}
	for i, u := range spus {
		k.Spawn(workload.Pmake(k, u.ID(), fmt.Sprintf("mk%d", i), c.Pmake))
	}
	if until > 0 {
		k.RunUntil(until)
	} else {
		res.End = k.Run()
	}
	res.Violations = append(res.Violations, k.Auditor().Violations()...)
	return res
}

func firstMemLoss(p *fault.Plan) (sim.Time, bool) {
	if p == nil {
		return 0, false
	}
	for _, e := range p.Events {
		if e.Kind == fault.MemLoss {
			return e.At, true
		}
	}
	return 0, false
}

// shrinkSlack is how far past the original failure time candidate
// replays run: long enough for the same violation to re-fire (it may
// shift by a tick or two once unrelated faults are gone), short enough
// to stay cheap.
const shrinkSlack = 200 * sim.Millisecond

// Shrink delta-debugs the failing case's fault schedule down to a
// locally minimal one that still fails: no single remaining fault (or
// contiguous chunk) can be dropped. Candidates are replayed only to
// just past the original failure time — checkpoint-bounded bisection —
// except when the failure carries no timestamp (a plain panic), which
// forces full replays. It returns the minimized case and how many
// candidate replays were spent.
func Shrink(c Case, orig *Result) (Case, int) {
	if !orig.Failed() || c.Faults.Empty() {
		return c, 0
	}
	var bound sim.Time
	if at := orig.FirstFailureAt(); at > 0 {
		bound = at + shrinkSlack
	}
	fails := func(events []fault.Event) bool {
		cand := c
		cand.Faults = &fault.Plan{Events: events}
		return run(cand, bound).Failed()
	}

	events := c.Faults.Events
	tests := 0
	n := 2
	for len(events) > 1 && n <= len(events) {
		chunk := (len(events) + n - 1) / n
		reduced := false
		for lo := 0; lo < len(events); lo += chunk {
			hi := min(lo+chunk, len(events))
			cand := make([]fault.Event, 0, len(events)-(hi-lo))
			cand = append(cand, events[:lo]...)
			cand = append(cand, events[hi:]...)
			tests++
			if fails(cand) {
				events = cand
				n = max(2, n-1)
				reduced = true
				break
			}
		}
		if !reduced {
			if n == len(events) {
				break
			}
			n = min(len(events), 2*n)
		}
	}
	out := c
	out.Faults = &fault.Plan{Events: events}
	return out, tests
}

// ReproCommand renders the one-line rerun that replays exactly this
// case, minimized schedule included.
func (c Case) ReproCommand() string {
	return fmt.Sprintf("pisobench -soak -soak-seed %d -soak-case %d -soak-faults %q",
		c.Seed, c.Index, c.Faults.String())
}

// WithFaults returns the case with its fault schedule replaced — the
// -soak-faults override path.
func (c Case) WithFaults(p *fault.Plan) Case {
	c.Faults = p
	return c
}

package soak

import (
	"bytes"
	"strings"
	"testing"

	"perfiso/internal/fault"
	"perfiso/internal/sim"
)

func TestCaseGenerationDeterministic(t *testing.T) {
	a := NewCase(42, 3)
	b := NewCase(42, 3)
	if a.Scheme != b.Scheme || a.SPUs != b.SPUs || a.Pmake != b.Pmake ||
		a.Faults.String() != b.Faults.String() {
		t.Fatalf("same (seed,index) gave different cases:\n%+v\n%+v", a, b)
	}
	c := NewCase(42, 4)
	if a.Faults.String() == c.Faults.String() && a.Pmake == c.Pmake {
		t.Fatal("adjacent indices generated identical cases")
	}
}

func TestGeneratedPlansAreValid(t *testing.T) {
	// Every generated plan must round-trip through the CLI spec parser
	// — otherwise the printed repro command would not replay.
	for i := 0; i < 50; i++ {
		c := NewCase(7, i)
		spec := c.Faults.String()
		p, err := fault.ParsePlan(spec)
		if err != nil {
			t.Fatalf("case %d generated unparseable plan %q: %v", i, spec, err)
		}
		if len(p.Events) != len(c.Faults.Events) {
			t.Fatalf("case %d plan %q round-tripped to %d events, had %d",
				i, spec, len(p.Events), len(c.Faults.Events))
		}
	}
}

func TestCleanCasePasses(t *testing.T) {
	res := Run(NewCase(1, 0))
	if res.Failed() {
		t.Fatalf("seed-1 case 0 failed: %s\n%s", res.Summary(), res.Panic)
	}
	if res.End == 0 {
		t.Fatal("run reported no completion time")
	}
}

// TestSabotagedRunFailsAndShrinks is the shrinker acceptance test: a
// deliberately corrupted run must trip the auditor, and delta-debugging
// must isolate the single mem-loss fault the corruption is tied to.
func TestSabotagedRunFailsAndShrinks(t *testing.T) {
	plan, err := fault.ParsePlan(
		"disk-slow:0:100ms:300ms:2," +
			"cpu-slow:1:150ms:400ms:0.5," +
			"mem-loss:0:300ms:300ms:0.25," +
			"disk-fail:1:400ms:200ms:0.2," +
			"cpu-off:2:500ms:300ms")
	if err != nil {
		t.Fatal(err)
	}
	c := NewCase(99, 0).WithFaults(plan)
	c.sabotage = true

	res := Run(c)
	if !res.Failed() {
		t.Fatal("sabotaged run did not fail")
	}
	if len(res.Violations) == 0 {
		t.Fatalf("expected auditor violations, got: %s", res.Summary())
	}
	if at := res.FirstFailureAt(); at < 300*sim.Millisecond {
		t.Fatalf("violation at %v, before the sabotage trigger", at)
	}

	minimal, tests := Shrink(c, res)
	if tests == 0 {
		t.Fatal("shrinker ran no candidate replays")
	}
	if got := len(minimal.Faults.Events); got != 1 {
		t.Fatalf("shrunk to %d events, want 1: %q", got, minimal.Faults.String())
	}
	if minimal.Faults.Events[0].Kind != fault.MemLoss {
		t.Fatalf("minimal event is %v, want mem-loss", minimal.Faults.Events[0].Kind)
	}

	// The minimal case must still reproduce on its own.
	again := Run(minimal)
	if !again.Failed() {
		t.Fatal("minimal repro does not fail when rerun")
	}

	cmd := minimal.ReproCommand()
	for _, want := range []string{"-soak-seed 99", "-soak-case 0", "mem-loss"} {
		if !strings.Contains(cmd, want) {
			t.Fatalf("repro command %q missing %q", cmd, want)
		}
	}
}

func TestShrinkKeepsPassingCaseUntouched(t *testing.T) {
	c := NewCase(1, 0)
	res := Run(c)
	shrunk, tests := Shrink(c, res)
	if tests != 0 || shrunk.Faults.String() != c.Faults.String() {
		t.Fatal("shrinker touched a passing case")
	}
}

func TestSweepSmoke(t *testing.T) {
	var buf bytes.Buffer
	if failures := Sweep(&buf, 1, 3); failures != 0 {
		t.Fatalf("soak sweep seed=1 found %d failures:\n%s", failures, buf.String())
	}
	if got := strings.Count(buf.String(), "soak case"); got != 3 {
		t.Fatalf("expected 3 case reports, got %d:\n%s", got, buf.String())
	}
}

package sim

import (
	"fmt"
)

// Event is a scheduled callback. Events are created through Engine.At /
// Engine.After and can be cancelled until they fire.
type Event struct {
	at        Time
	seq       uint64 // tie-breaker for same-time events; preserves FIFO order
	fn        func()
	fnU       func(uint64) // closure-free callback form; arg carries the operand
	arg       uint64
	name      string
	index     int    // queue position marker, -1 when not queued
	class     uint16 // observer class id, stamped at schedule time (see Obs)
	cancelled bool
	pooled    bool // fire-and-forget event; recycled after it fires
}

// At returns the instant the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Name returns the diagnostic label given at scheduling time.
func (ev *Event) Name() string { return ev.name }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or was already cancelled is a no-op. Cancelled events are
// dropped lazily when they surface at the head of the queue.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel has been called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Pending reports whether the event is still queued and will fire.
func (ev *Event) Pending() bool { return ev.index >= 0 && !ev.cancelled }

// Handle cancels a pooled (Call/CallAfter) event. Pooled events are
// recycled the moment they fire, so a bare *Event would dangle: the same
// allocation may already be some other subsystem's event. The handle
// captures the scheduling sequence number and goes inert the instant the
// underlying allocation is reused, so a stale Cancel can never kill an
// unrelated event. The zero Handle is valid and inert.
type Handle struct {
	ev  *Event
	seq uint64
}

// Cancel prevents the event from firing, returning true if it was still
// pending. Cancelling an event that already fired (or a zero Handle) is
// an inert no-op, even if the allocation has been recycled.
func (h Handle) Cancel() bool {
	if h.ev == nil || h.ev.seq != h.seq || h.ev.index < 0 || h.ev.cancelled {
		return false
	}
	h.ev.cancelled = true
	return true
}

// Pending reports whether the handle's event is still queued and will fire.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.seq == h.seq && h.ev.index >= 0 && !h.ev.cancelled
}

// Engine is the discrete-event simulation core: a virtual clock and a
// priority queue of events. It is not safe for concurrent use; the whole
// simulated machine runs on one OS thread by design. Independent engines
// are fully isolated, so separate simulations may run on separate
// goroutines concurrently.
type Engine struct {
	now        Time
	seq        uint64
	q          evqueue
	kind       QueueKind
	free       []*Event // recycled pool for fire-and-forget events
	arena      []Event  // current allocation chunk; events are carved from it
	arenaPos   int
	dispatched uint64
	running    bool
	stop       bool
	obs        *Obs // nil unless AttachObs was called; one nil check per hot path
}

// arenaChunk is how many events each arena block holds. Blocks are never
// freed individually — the pool's steady state recycles events, so new
// blocks are only carved while the live population is still growing.
const arenaChunk = 128

// NewEngine returns an engine with the clock at zero and no events
// queued, using the process-default queue implementation (see
// SetDefaultQueue).
func NewEngine() *Engine {
	k := defaultQueue
	e := &Engine{q: newQueue(k), kind: k}
	if engineHook != nil {
		engineHook(e)
	}
	return e
}

// QueueStats snapshots the event queue's internal telemetry.
func (e *Engine) QueueStats() QueueStats { return e.q.stats() }

// QueueKind reports which event-queue implementation this engine uses.
func (e *Engine) QueueKind() QueueKind { return e.kind }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued (including events
// that were cancelled but not yet dropped).
func (e *Engine) Pending() int { return e.q.size() }

// Dispatched returns the total number of events that have fired.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// eventLess orders events by time, breaking ties by scheduling order so
// same-time events fire FIFO.
func eventLess(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// alloc builds an event, drawing from the recycle pool, then the current
// arena chunk, and queues it.
func (e *Engine) alloc(t Time, name string, fn func(), fnU func(uint64), arg uint64, pooled bool) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		if e.arenaPos == len(e.arena) {
			e.arena = make([]Event, arenaChunk)
			e.arenaPos = 0
		}
		ev = &e.arena[e.arenaPos]
		e.arenaPos++
	}
	*ev = Event{at: t, seq: e.seq, fn: fn, fnU: fnU, arg: arg, name: name, index: -1, pooled: pooled}
	e.seq++
	if e.obs != nil {
		e.obs.onSchedule(ev, e.now)
	}
	e.q.push(ev)
	return ev
}

// checkSchedule validates scheduling time. Scheduling in the past is a
// programming error in the machine model and panics loudly rather than
// silently corrupting causality.
func (e *Engine) checkSchedule(t Time, name string) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %s, before now (%s)", name, t, e.now))
	}
}

// At schedules fn to run at absolute time t and returns a cancellable
// handle. Handles are never recycled: callers may retain them after the
// event fires. High-rate fire-and-forget callers should prefer Call,
// which pools its allocations.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	e.checkSchedule(t, name)
	if fn == nil {
		panic(fmt.Sprintf("sim: event %q has nil callback", name))
	}
	return e.alloc(t, name, fn, nil, 0, false)
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to "now" so callers computing small time deltas from float math
// do not trip the past-scheduling panic on a -1 ns rounding artifact.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// Call schedules fn at absolute time t like At, but the event's
// allocation is recycled the moment it fires, so steady-state
// fire-and-forget traffic — disk completions, semaphore releases, process
// sleeps, scheduler slices — allocates nothing. The returned Handle is
// the only safe way to cancel such an event; it goes inert once the
// event fires.
func (e *Engine) Call(t Time, name string, fn func()) Handle {
	e.checkSchedule(t, name)
	if fn == nil {
		panic(fmt.Sprintf("sim: event %q has nil callback", name))
	}
	ev := e.alloc(t, name, fn, nil, 0, true)
	return Handle{ev: ev, seq: ev.seq}
}

// CallAfter schedules fn to run d after the current time, with Call's
// pooled fire-and-forget semantics. Negative delays clamp to "now" like
// After.
func (e *Engine) CallAfter(d Time, name string, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	return e.Call(e.now+d, name, fn)
}

// CallU64 is Call for a callback taking a uint64 operand. Passing the
// operand through the event instead of closing over it lets hot callers
// (the scheduler's slice-expiry guard) schedule with a single long-lived
// func value and no per-event closure allocation.
func (e *Engine) CallU64(t Time, name string, fn func(uint64), arg uint64) Handle {
	e.checkSchedule(t, name)
	if fn == nil {
		panic(fmt.Sprintf("sim: event %q has nil callback", name))
	}
	ev := e.alloc(t, name, nil, fn, arg, true)
	return Handle{ev: ev, seq: ev.seq}
}

// CallAfterU64 is CallAfter for a callback taking a uint64 operand.
func (e *Engine) CallAfterU64(d Time, name string, fn func(uint64), arg uint64) Handle {
	if d < 0 {
		d = 0
	}
	return e.CallU64(e.now+d, name, fn, arg)
}

// Ticker fires a callback at a fixed period until cancelled. The callback
// runs for the first time one full period after creation. Each arming
// uses a pooled event and the one fire closure allocated at creation, so
// a steady ticker contributes nothing to allocation traffic.
type Ticker struct {
	engine *Engine
	period Time
	name   string
	fn     func()
	fire   func()
	h      Handle
	done   bool
}

// Every creates and starts a Ticker with the given period.
func (e *Engine) Every(period Time, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q has non-positive period %s", name, period))
	}
	t := &Ticker{engine: e, period: period, name: name, fn: fn}
	t.fire = func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done { // fn may have stopped us
			t.h = t.engine.CallAfter(t.period, t.name, t.fire)
		}
	}
	t.h = e.CallAfter(period, name, t.fire)
	return t
}

// Stop cancels the ticker; the callback will not run again.
func (t *Ticker) Stop() {
	t.done = true
	t.h.Cancel()
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty (after discarding cancelled events).
func (e *Engine) Step() bool {
	for {
		ev := e.q.pop()
		if ev == nil {
			return false
		}
		if ev.cancelled {
			if ev.pooled {
				e.recycle(ev)
			}
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards firing %q (%s < %s)", ev.name, ev.at, e.now))
		}
		e.now = ev.at
		e.dispatched++
		// Read the callback (and, when observed, the class stamped at
		// schedule time) before recycling: a pooled event's allocation may
		// be reused by a schedule issued from inside its own callback.
		fn, fnU, arg, class := ev.fn, ev.fnU, ev.arg, ev.class
		if ev.pooled {
			// Recycle before firing so an event scheduled from inside fn
			// reuses the hot allocation.
			e.recycle(ev)
		}
		if e.obs != nil {
			e.obs.beginDispatch(class)
		}
		if fnU != nil {
			fnU(arg)
		} else {
			fn()
		}
		if e.obs != nil {
			e.obs.endDispatch()
		}
		return true
	}
}

// recycle returns a pooled event to the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	ev.fnU = nil
	e.free = append(e.free, ev)
}

// Run fires events until the queue drains or Stop is called, and returns
// the number of events dispatched by this call.
func (e *Engine) Run() uint64 {
	start := e.dispatched
	e.running, e.stop = true, false
	for !e.stop && e.Step() {
	}
	e.running = false
	return e.dispatched - start
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to the deadline. Events after the deadline stay queued. If Stop ends
// the run early the clock stays where the last event left it — simulated
// time the run never reached must not silently elapse.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.dispatched
	e.running, e.stop = true, false
	for !e.stop {
		// Peek past cancelled events without firing anything late.
		next := e.peek()
		if next == nil || next.at > deadline {
			// Drained up to the deadline: the remaining gap really was
			// idle, so the clock advances over it.
			if e.now < deadline {
				e.now = deadline
			}
			break
		}
		e.Step()
	}
	e.running = false
	return e.dispatched - start
}

// Stop makes the innermost Run/RunUntil return after the current event's
// callback completes. It may only be called from inside a callback.
func (e *Engine) Stop() { e.stop = true }

// peek returns the earliest non-cancelled event without firing it,
// discarding (and recycling) cancelled events it passes over.
func (e *Engine) peek() *Event {
	for {
		ev := e.q.min()
		if ev == nil {
			return nil
		}
		if !ev.cancelled {
			return ev
		}
		e.q.pop()
		if ev.pooled {
			e.recycle(ev)
		}
	}
}

package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created through Engine.At /
// Engine.After and can be cancelled until they fire.
type Event struct {
	at        Time
	seq       uint64 // tie-breaker for same-time events; preserves FIFO order
	fn        func()
	name      string
	index     int // heap index, -1 when not queued
	cancelled bool
}

// At returns the instant the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Name returns the diagnostic label given at scheduling time.
func (ev *Event) Name() string { return ev.name }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or was already cancelled is a no-op. Cancelled events are
// dropped lazily when they surface at the head of the queue.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel has been called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Pending reports whether the event is still queued and will fire.
func (ev *Event) Pending() bool { return ev.index >= 0 && !ev.cancelled }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event simulation core: a virtual clock and a
// priority queue of events. It is not safe for concurrent use; the whole
// simulated machine runs on one OS thread by design.
type Engine struct {
	now        Time
	seq        uint64
	queue      eventHeap
	dispatched uint64
	running    bool
	stop       bool
}

// NewEngine returns an engine with the clock at zero and no events queued.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued (including events
// that were cancelled but not yet dropped).
func (e *Engine) Pending() int { return len(e.queue) }

// Dispatched returns the total number of events that have fired.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error in the machine model and panics loudly rather than
// silently corrupting causality.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %s, before now (%s)", name, t, e.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sim: event %q has nil callback", name))
	}
	ev := &Event{at: t, seq: e.seq, fn: fn, name: name, index: -1}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to "now" so callers computing small time deltas from float math
// do not trip the past-scheduling panic on a -1 ns rounding artifact.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// Ticker fires a callback at a fixed period until cancelled. The callback
// runs for the first time one full period after creation.
type Ticker struct {
	engine *Engine
	period Time
	fn     func()
	ev     *Event
	done   bool
}

// Every creates and starts a Ticker with the given period.
func (e *Engine) Every(period Time, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q has non-positive period %s", name, period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm(name)
	return t
}

func (t *Ticker) arm(name string) {
	t.ev = t.engine.After(t.period, name, func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done { // fn may have stopped us
			t.arm(name)
		}
	})
}

// Stop cancels the ticker; the callback will not run again.
func (t *Ticker) Stop() {
	t.done = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty (after discarding cancelled events).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards firing %q (%s < %s)", ev.name, ev.at, e.now))
		}
		e.now = ev.at
		e.dispatched++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called, and returns
// the number of events dispatched by this call.
func (e *Engine) Run() uint64 {
	start := e.dispatched
	e.running, e.stop = true, false
	for !e.stop && e.Step() {
	}
	e.running = false
	return e.dispatched - start
}

// RunUntil fires events with timestamps <= deadline, then sets the clock to
// the deadline (if it got that far). Events after the deadline stay queued.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.dispatched
	e.running, e.stop = true, false
	for !e.stop {
		// Peek past cancelled events without firing anything late.
		next := e.peek()
		if next == nil || next.at > deadline {
			break
		}
		e.Step()
	}
	e.running = false
	if e.now < deadline {
		e.now = deadline
	}
	return e.dispatched - start
}

// Stop makes the innermost Run/RunUntil return after the current event's
// callback completes. It may only be called from inside a callback.
func (e *Engine) Stop() { e.stop = true }

// peek returns the earliest non-cancelled event without firing it,
// discarding cancelled events it passes over.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		heap.Pop(&e.queue)
	}
	return nil
}

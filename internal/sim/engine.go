package sim

import (
	"fmt"
)

// Event is a scheduled callback. Events are created through Engine.At /
// Engine.After and can be cancelled until they fire.
type Event struct {
	at        Time
	seq       uint64 // tie-breaker for same-time events; preserves FIFO order
	fn        func()
	name      string
	index     int // heap index, -1 when not queued
	cancelled bool
	pooled    bool // fire-and-forget event; recycled after it fires
}

// At returns the instant the event is scheduled to fire.
func (ev *Event) At() Time { return ev.at }

// Name returns the diagnostic label given at scheduling time.
func (ev *Event) Name() string { return ev.name }

// Cancel prevents the event from firing. Cancelling an event that has
// already fired or was already cancelled is a no-op. Cancelled events are
// dropped lazily when they surface at the head of the queue.
func (ev *Event) Cancel() { ev.cancelled = true }

// Cancelled reports whether Cancel has been called on the event.
func (ev *Event) Cancelled() bool { return ev.cancelled }

// Pending reports whether the event is still queued and will fire.
func (ev *Event) Pending() bool { return ev.index >= 0 && !ev.cancelled }

// Engine is the discrete-event simulation core: a virtual clock and a
// priority queue of events. It is not safe for concurrent use; the whole
// simulated machine runs on one OS thread by design. Independent engines
// are fully isolated, so separate simulations may run on separate
// goroutines concurrently.
type Engine struct {
	now        Time
	seq        uint64
	queue      []*Event // binary min-heap ordered by (at, seq)
	free       []*Event // recycled pool for fire-and-forget events
	dispatched uint64
	running    bool
	stop       bool
}

// NewEngine returns an engine with the clock at zero and no events queued.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending returns the number of events currently queued (including events
// that were cancelled but not yet dropped).
func (e *Engine) Pending() int { return len(e.queue) }

// Dispatched returns the total number of events that have fired.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// eventLess orders events by time, breaking ties by scheduling order so
// same-time events fire FIFO.
func eventLess(a, b *Event) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// push inserts ev into the heap, sifting it up to its position. The heap
// is hand-rolled rather than container/heap so comparisons and moves stay
// concrete (*Event) instead of boxing through an interface on every
// scheduler tick, disk request, and page fault.
func (e *Engine) push(ev *Event) {
	i := len(e.queue)
	e.queue = append(e.queue, ev)
	q := e.queue
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !eventLess(ev, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down by comparing sibling children at each level.
func (e *Engine) pop() *Event {
	q := e.queue
	n := len(q) - 1
	top := q[0]
	top.index = -1
	ev := q[n]
	q[n] = nil
	e.queue = q[:n]
	if n == 0 {
		return top
	}
	q = e.queue
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := q[l]
		if r := l + 1; r < n && eventLess(q[r], c) {
			l, c = r, q[r]
		}
		if !eventLess(c, ev) {
			break
		}
		q[i] = c
		c.index = i
		i = l
	}
	q[i] = ev
	ev.index = i
	return top
}

// alloc builds an event, drawing from the recycle pool when possible, and
// queues it.
func (e *Engine) alloc(t Time, name string, fn func(), pooled bool) *Event {
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free = e.free[:n-1]
		*ev = Event{at: t, seq: e.seq, fn: fn, name: name, index: -1, pooled: pooled}
	} else {
		ev = &Event{at: t, seq: e.seq, fn: fn, name: name, index: -1, pooled: pooled}
	}
	e.seq++
	e.push(ev)
	return ev
}

// checkSchedule validates scheduling arguments. Scheduling in the past is
// a programming error in the machine model and panics loudly rather than
// silently corrupting causality.
func (e *Engine) checkSchedule(t Time, name string, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: event %q scheduled at %s, before now (%s)", name, t, e.now))
	}
	if fn == nil {
		panic(fmt.Sprintf("sim: event %q has nil callback", name))
	}
}

// At schedules fn to run at absolute time t and returns a cancellable
// handle. Handles are never recycled: callers may retain them after the
// event fires. High-rate fire-and-forget callers should prefer Call,
// which pools its allocations.
func (e *Engine) At(t Time, name string, fn func()) *Event {
	e.checkSchedule(t, name, fn)
	return e.alloc(t, name, fn, false)
}

// After schedules fn to run d after the current time. Negative delays are
// clamped to "now" so callers computing small time deltas from float math
// do not trip the past-scheduling panic on a -1 ns rounding artifact.
func (e *Engine) After(d Time, name string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, name, fn)
}

// Call schedules fn at absolute time t like At, but returns no handle:
// the event cannot be cancelled, which lets the engine recycle its
// allocation the moment it fires. The simulation hot path — disk
// completions, semaphore releases, process sleeps, scheduler slices —
// goes through here so steady-state event traffic allocates nothing.
func (e *Engine) Call(t Time, name string, fn func()) {
	e.checkSchedule(t, name, fn)
	e.alloc(t, name, fn, true)
}

// CallAfter schedules fn to run d after the current time, with Call's
// pooled fire-and-forget semantics. Negative delays clamp to "now" like
// After.
func (e *Engine) CallAfter(d Time, name string, fn func()) {
	if d < 0 {
		d = 0
	}
	e.Call(e.now+d, name, fn)
}

// Ticker fires a callback at a fixed period until cancelled. The callback
// runs for the first time one full period after creation.
type Ticker struct {
	engine *Engine
	period Time
	fn     func()
	ev     *Event
	done   bool
}

// Every creates and starts a Ticker with the given period.
func (e *Engine) Every(period Time, name string, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("sim: ticker %q has non-positive period %s", name, period))
	}
	t := &Ticker{engine: e, period: period, fn: fn}
	t.arm(name)
	return t
}

func (t *Ticker) arm(name string) {
	t.ev = t.engine.After(t.period, name, func() {
		if t.done {
			return
		}
		t.fn()
		if !t.done { // fn may have stopped us
			t.arm(name)
		}
	})
}

// Stop cancels the ticker; the callback will not run again.
func (t *Ticker) Stop() {
	t.done = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}

// Step fires the single earliest pending event. It reports false when the
// queue is empty (after discarding cancelled events).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := e.pop()
		if ev.cancelled {
			if ev.pooled {
				e.recycle(ev)
			}
			continue
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards firing %q (%s < %s)", ev.name, ev.at, e.now))
		}
		e.now = ev.at
		e.dispatched++
		fn := ev.fn
		if ev.pooled {
			// Recycle before firing so an event scheduled from inside fn
			// reuses the hot allocation.
			e.recycle(ev)
		}
		fn()
		return true
	}
	return false
}

// recycle returns a pooled event to the free list.
func (e *Engine) recycle(ev *Event) {
	ev.fn = nil
	e.free = append(e.free, ev)
}

// Run fires events until the queue drains or Stop is called, and returns
// the number of events dispatched by this call.
func (e *Engine) Run() uint64 {
	start := e.dispatched
	e.running, e.stop = true, false
	for !e.stop && e.Step() {
	}
	e.running = false
	return e.dispatched - start
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to the deadline. Events after the deadline stay queued. If Stop ends
// the run early the clock stays where the last event left it — simulated
// time the run never reached must not silently elapse.
func (e *Engine) RunUntil(deadline Time) uint64 {
	start := e.dispatched
	e.running, e.stop = true, false
	for !e.stop {
		// Peek past cancelled events without firing anything late.
		next := e.peek()
		if next == nil || next.at > deadline {
			// Drained up to the deadline: the remaining gap really was
			// idle, so the clock advances over it.
			if e.now < deadline {
				e.now = deadline
			}
			break
		}
		e.Step()
	}
	e.running = false
	return e.dispatched - start
}

// Stop makes the innermost Run/RunUntil return after the current event's
// callback completes. It may only be called from inside a callback.
func (e *Engine) Stop() { e.stop = true }

// peek returns the earliest non-cancelled event without firing it,
// discarding cancelled events it passes over.
func (e *Engine) peek() *Event {
	for len(e.queue) > 0 {
		ev := e.queue[0]
		if !ev.cancelled {
			return ev
		}
		ev = e.pop()
		if ev.pooled {
			e.recycle(ev)
		}
	}
	return nil
}

// Package sim provides the deterministic discrete-event simulation engine
// that underlies the perfiso machine model.
//
// The engine is single-threaded and fully deterministic: events fire in
// (time, insertion-sequence) order, there are no goroutines, and the only
// source of randomness is the seeded RNG type. Two runs with the same
// inputs produce byte-identical statistics, which is what makes the
// experiment harness's paper-shape assertions meaningful.
package sim

import "fmt"

// Time is an instant in simulated time, expressed in nanoseconds since
// machine boot. A Time is also used for durations; the arithmetic is the
// same and keeping a single type avoids a conversion layer at every call
// site in the kernel model.
type Time int64

// Common duration units, mirroring time.Duration's constants.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Forever is a sentinel meaning "no deadline". It is far enough in the
// future (about 292 years of simulated time) that no experiment reaches it.
const Forever = Time(1<<63 - 1)

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns the time as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// FromMilliseconds converts a floating-point number of milliseconds to a Time.
func FromMilliseconds(ms float64) Time { return Time(ms * float64(Millisecond)) }

// String renders the time with a unit chosen for readability.
func (t Time) String() string {
	switch {
	case t == Forever:
		return "forever"
	case t < 0:
		return fmt.Sprintf("-%s", -t)
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.6gs", t.Seconds())
	}
}

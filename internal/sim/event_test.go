package sim

import "testing"

func TestEventAccessors(t *testing.T) {
	e := NewEngine()
	ev := e.At(42*Millisecond, "probe", func() {})
	if ev.At() != 42*Millisecond {
		t.Fatalf("At() = %v", ev.At())
	}
	if ev.Name() != "probe" {
		t.Fatalf("Name() = %q", ev.Name())
	}
	if ev.Cancelled() {
		t.Fatal("fresh event reports cancelled")
	}
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.At(0, "nil", nil)
}

func TestEveryRejectsNonPositivePeriod(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e.Every(0, "bad", func() {})
}

package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator (SplitMix64).
// Each consumer of randomness in the machine model owns its own stream so
// that adding a new consumer never perturbs the draws seen by existing
// ones — a property plain math/rand sharing would not give us.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Fork derives an independent child stream from the current state. The
// child's sequence is decorrelated from the parent's by an extra mixing
// step, and forking advances the parent exactly one draw.
func (r *RNG) Fork() *RNG { return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next 64 pseudo-random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Duration returns a uniform Time in [lo, hi]. It panics if hi < lo.
func (r *RNG) Duration(lo, hi Time) Time {
	if hi < lo {
		panic("sim: Duration with hi < lo")
	}
	if hi == lo {
		return lo
	}
	return lo + Time(r.Int63n(int64(hi-lo)+1))
}

// Exp returns an exponentially distributed Time with the given mean,
// truncated at 20x the mean to keep single draws from dominating a run.
func (r *RNG) Exp(mean Time) Time {
	if mean <= 0 {
		return 0
	}
	u := r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	d := -math.Log(1-u) * float64(mean)
	if max := 20 * float64(mean); d > max {
		d = max
	}
	return Time(d)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

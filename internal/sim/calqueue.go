package sim

// calQueue is a calendar queue (Brown, CACM 1988): the event population
// is hashed by time into an array of "day" buckets of fixed width, and a
// cursor walks the buckets in calendar order, popping events that fall
// inside the current day's window. For the quasi-stationary populations a
// machine simulation produces (a near-constant pool of ticks, slices, and
// disk completions marching forward in time) both enqueue and dequeue are
// amortized O(1), versus O(log n) for the binary heap.
//
// Ordering is exactly (at, seq): a bucket is kept sorted by that key, two
// events with the same at always hash to the same bucket, and the cursor
// never pops an event from a later day before finishing the current one —
// so same-time events fire in FIFO order even across bucket rollover
// (events a whole calendar "year" apart sharing a bucket slot).
type calQueue struct {
	buckets [][]*Event // each sorted ascending by (at, seq), live from heads[i]
	heads   []int      // index of the first live slot per bucket
	mask    int64      // len(buckets)-1 (power of two)
	width   Time       // bucket (day) width in ns
	n       int        // queued events, including cancelled-not-yet-dropped
	cur     int64      // current virtual day: window [cur*width, (cur+1)*width)

	// gapEWMA tracks the recent mean separation between consecutively
	// popped events; rebuilds derive the next bucket width from it so the
	// calendar adapts to the simulation's event rate deterministically.
	gapEWMA Time
	lastPop Time
	popped  bool

	// Telemetry (ISSUE 10): plain counters bumped on the hot paths —
	// integer increments, no allocation, no branches beyond what push
	// already does — plus a width log appended only on (rare) rebuilds.
	pushes     uint64
	collisions uint64
	rebuilds   uint64
	grows      uint64
	shrinks    uint64
	widthLog   []WidthChange
}

const (
	calMinBuckets = 256
	calGrowLoad   = 2 // grow when n > buckets*calGrowLoad
	calInitWidth  = Time(64 * Microsecond)
	// calWidthGapFactor sets the target bucket width as a multiple of the
	// observed mean pop gap: a few events per day keeps both the in-bucket
	// insertion sort and the empty-day cursor walk short.
	calWidthGapFactor = 4
	// calBucketCap pre-sizes every bucket: collision depths up to this
	// never allocate, so steady-state push traffic only pays for a bucket
	// when it first exceeds the pre-size (the slice then keeps its grown
	// capacity for the rest of the run). Eight covers a machine's worth
	// of slice-end events landing in one day — the common synchronized
	// burst — without bloating sparse calendars.
	calBucketCap = 8
)

func newCalQueue() *calQueue {
	c := &calQueue{
		buckets: makeBuckets(calMinBuckets),
		heads:   make([]int, calMinBuckets),
		mask:    calMinBuckets - 1,
		width:   calInitWidth,
		gapEWMA: calInitWidth / calWidthGapFactor,
	}
	return c
}

// makeBuckets builds a bucket array whose slots all have calBucketCap
// capacity backed by one contiguous allocation.
func makeBuckets(nb int) [][]*Event {
	backing := make([]*Event, nb*calBucketCap)
	buckets := make([][]*Event, nb)
	for i := range buckets {
		buckets[i] = backing[i*calBucketCap : i*calBucketCap : (i+1)*calBucketCap]
	}
	return buckets
}

func (c *calQueue) size() int { return c.n }

func (c *calQueue) each(fn func(*Event)) {
	for i, b := range c.buckets {
		for _, ev := range b[c.heads[i]:] {
			fn(ev)
		}
	}
}

func (c *calQueue) push(ev *Event) {
	day := int64(ev.at) / int64(c.width)
	if c.n == 0 || day < c.cur {
		// An event behind the cursor (scheduled "now" after the cursor
		// advanced within the current instant's day) pulls it back; the
		// cursor walk re-skips the empty days cheaply.
		c.cur = day
	}
	slot := day & c.mask
	b := c.buckets[slot]
	c.pushes++
	if len(b) > c.heads[slot] {
		c.collisions++
	}
	// Fast path: arrivals are overwhelmingly in (at, seq) order, so the
	// new event usually belongs at the tail.
	if len(b) == 0 || !eventLess(ev, b[len(b)-1]) {
		c.buckets[slot] = append(b, ev)
	} else {
		// Binary search the live region for the insertion point.
		lo, hi := c.heads[slot], len(b)
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if eventLess(ev, b[mid]) {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		b = append(b, nil)
		copy(b[lo+1:], b[lo:])
		b[lo] = ev
		c.buckets[slot] = b
	}
	ev.index = int(slot)
	c.n++
	if c.n > len(c.buckets)*calGrowLoad {
		c.rebuild(len(c.buckets) * 2)
	}
}

func (c *calQueue) min() *Event {
	if c.n == 0 {
		return nil
	}
	// Walk from the cursor without committing its advance: peeks happen
	// at arbitrary points (RunUntil deadline checks) and advancing the
	// real cursor is pop's job.
	cur := c.cur
	for laps := 0; ; laps++ {
		slot := cur & c.mask
		b := c.buckets[slot]
		if h := c.heads[slot]; h < len(b) && b[h].at < Time(cur+1)*c.width {
			return b[h]
		}
		cur++
		if laps >= len(c.buckets) {
			return c.scanMin()
		}
	}
}

func (c *calQueue) pop() *Event {
	if c.n == 0 {
		return nil
	}
	for laps := 0; ; laps++ {
		slot := c.cur & c.mask
		b := c.buckets[slot]
		if h := c.heads[slot]; h < len(b) && b[h].at < Time(c.cur+1)*c.width {
			ev := b[h]
			b[h] = nil
			if h++; h == len(b) {
				c.buckets[slot] = b[:0]
				c.heads[slot] = 0
			} else {
				c.heads[slot] = h
				if h > 32 && h > len(b)/2 {
					// Compact the dead prefix of a long-lived bucket.
					m := copy(b, b[h:])
					c.buckets[slot] = b[:m]
					c.heads[slot] = 0
				}
			}
			c.n--
			ev.index = -1
			c.observeGap(ev.at)
			if nb := len(c.buckets); nb > calMinBuckets && c.n < nb/4 {
				c.rebuild(nb / 2)
			}
			return ev
		}
		c.cur++
		if laps >= len(c.buckets) {
			// A full lap of empty days: the population is sparse relative
			// to the calendar year. Jump straight to the day of the global
			// minimum instead of walking the gap one day at a time.
			m := c.scanMin()
			c.cur = int64(m.at) / int64(c.width)
			laps = 0
		}
	}
}

// observeGap folds the separation between consecutive pops into the EWMA
// that sizes the next rebuild's bucket width.
func (c *calQueue) observeGap(at Time) {
	if c.popped {
		gap := at - c.lastPop
		c.gapEWMA += (gap - c.gapEWMA) / 8
	}
	c.lastPop, c.popped = at, true
}

// scanMin finds the earliest event by brute force — only used on the
// sparse path and during rebuilds, both rare.
func (c *calQueue) scanMin() *Event {
	var best *Event
	for i, b := range c.buckets {
		for _, ev := range b[c.heads[i]:] {
			if best == nil || eventLess(ev, best) {
				best = ev
			}
		}
	}
	return best
}

// calWidthLogCap bounds the width log so a pathological grow/shrink
// oscillation cannot hoard memory; the counters keep exact totals.
const calWidthLogCap = 256

// rebuild resizes the calendar to nb buckets, re-deriving the bucket
// width from the observed pop-gap EWMA, and redistributes every event.
func (c *calQueue) rebuild(nb int) {
	c.rebuilds++
	switch {
	case nb > len(c.buckets):
		c.grows++
	case nb < len(c.buckets):
		c.shrinks++
	}
	old := c.buckets
	oldHeads := c.heads
	w := c.gapEWMA * calWidthGapFactor
	if w < 1 {
		w = 1
	}
	c.width = w
	c.buckets = makeBuckets(nb)
	c.heads = make([]int, nb)
	c.mask = int64(nb) - 1
	n := c.n
	c.n = 0
	var min *Event
	for i, b := range old {
		for _, ev := range b[oldHeads[i]:] {
			if min == nil || eventLess(ev, min) {
				min = ev
			}
		}
	}
	if min != nil {
		c.cur = int64(min.at) / int64(c.width)
	}
	for i, b := range old {
		for _, ev := range b[oldHeads[i]:] {
			c.push(ev)
		}
	}
	c.n = n
	if len(c.widthLog) < calWidthLogCap {
		c.widthLog = append(c.widthLog, WidthChange{Width: c.width, Buckets: nb, Events: n})
	}
}

// stats snapshots the calendar's telemetry, computing the live-bucket
// occupancy histogram by walking the bucket array at call time (so the
// hot paths never pay for it).
func (c *calQueue) stats() QueueStats {
	s := QueueStats{
		Kind:       QueueCalendar.String(),
		Len:        c.n,
		Buckets:    len(c.buckets),
		Width:      c.width,
		Pushes:     c.pushes,
		Collisions: c.collisions,
		Rebuilds:   c.rebuilds,
		Grows:      c.grows,
		Shrinks:    c.shrinks,
		Occupancy:  make([]int, 9),
		WidthLog:   append([]WidthChange(nil), c.widthLog...),
	}
	last := len(s.Occupancy) - 1
	for i, b := range c.buckets {
		d := len(b) - c.heads[i]
		if d > s.MaxDepth {
			s.MaxDepth = d
		}
		if d > last {
			d = last
		}
		s.Occupancy[d]++
	}
	return s
}

package sim

import "testing"

// TestObsCensusAndEdges drives a tiny two-domain event graph through an
// observed engine and checks the census, the intra/cross/external split,
// and the edge lookahead statistics.
func TestObsCensusAndEdges(t *testing.T) {
	e := NewEngine()
	obs := e.AttachObs(ObsConfig{
		Classify: func(name string) (string, string) {
			switch name {
			case "disk.complete":
				return "disk", "disk0"
			default:
				return "kernel", "global"
			}
		},
	})

	// External schedule (issued outside any dispatch).
	e.Call(10, "kernel.tick", func() {
		// Intra-domain: global -> global.
		e.CallAfter(5, "kernel.tick2", func() {})
		// Cross-domain: global -> disk0, lookahead 7 then 3.
		e.CallAfter(7, "disk.complete", func() {
			// Cross back: disk0 -> global, lookahead 2.
			e.CallAfter(2, "kernel.tick3", func() {})
		})
		e.CallAfter(3, "disk.complete", func() {})
	})
	e.Run()

	classes := obs.Classes()
	counts := map[string]uint64{}
	for _, c := range classes {
		counts[c.Name] = c.Count
		switch c.Name {
		case "disk.complete":
			if c.Module != "disk" || c.Domain != "disk0" {
				t.Fatalf("disk.complete classified as %s/%s", c.Module, c.Domain)
			}
		default:
			if c.Module != "kernel" || c.Domain != "global" {
				t.Fatalf("%s classified as %s/%s", c.Name, c.Module, c.Domain)
			}
		}
	}
	want := map[string]uint64{"kernel.tick": 1, "kernel.tick2": 1, "kernel.tick3": 1, "disk.complete": 2}
	for name, n := range want {
		if counts[name] != n {
			t.Fatalf("census[%s] = %d, want %d (all: %v)", name, counts[name], n, counts)
		}
	}

	intra, cross, external := obs.EdgeTotals()
	if external != 1 {
		t.Fatalf("external = %d, want 1", external)
	}
	if intra != 1 {
		t.Fatalf("intra = %d, want 1", intra)
	}
	if cross != 3 {
		t.Fatalf("cross = %d, want 3", cross)
	}

	edges := obs.Edges()
	if len(edges) != 2 {
		t.Fatalf("edges = %+v, want 2 entries", edges)
	}
	// Sorted by (From, To): disk0->global first, then global->disk0.
	if edges[0].From != "disk0" || edges[0].To != "global" || edges[0].Count != 1 || edges[0].MinLookahead != 2 {
		t.Fatalf("edge[0] = %+v", edges[0])
	}
	if edges[1].From != "global" || edges[1].To != "disk0" || edges[1].Count != 2 || edges[1].MinLookahead != 3 || edges[1].SumLookahead != 10 {
		t.Fatalf("edge[1] = %+v", edges[1])
	}
}

// TestObsDefaultClassifier checks the prefix-module fallback.
func TestObsDefaultClassifier(t *testing.T) {
	e := NewEngine()
	obs := e.AttachObs(ObsConfig{})
	e.Call(1, "mem.scan", func() {})
	e.Call(2, "bare", func() {})
	e.Run()
	for _, c := range obs.Classes() {
		switch c.Name {
		case "mem.scan":
			if c.Module != "mem" || c.Domain != "global" {
				t.Fatalf("mem.scan classified as %s/%s", c.Module, c.Domain)
			}
		case "bare":
			if c.Module != "bare" || c.Domain != "global" {
				t.Fatalf("bare classified as %s/%s", c.Module, c.Domain)
			}
		}
	}
}

// TestObsRecycledClassStamp checks that a pooled event scheduled from
// inside the callback of the event whose allocation it reuses still gets
// its own class (the dispatch path must read the stamp before recycling).
func TestObsRecycledClassStamp(t *testing.T) {
	e := NewEngine()
	obs := e.AttachObs(ObsConfig{})
	var fired int
	e.Call(1, "a.first", func() {
		// Reuses the just-recycled allocation of a.first.
		e.CallAfter(1, "b.second", func() { fired++ })
	})
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d", fired)
	}
	for _, c := range obs.Classes() {
		if c.Name == "b.second" && (c.Count != 1 || c.Module != "b") {
			t.Fatalf("b.second = %+v", c)
		}
		if c.Name == "a.first" && c.Count != 1 {
			t.Fatalf("a.first = %+v", c)
		}
	}
}

// TestObsAttachLate ensures attaching after events were scheduled panics:
// those events would carry unclassified (zero) class stamps.
func TestObsAttachLate(t *testing.T) {
	e := NewEngine()
	e.Call(1, "x", func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("AttachObs after scheduling did not panic")
		}
	}()
	e.AttachObs(ObsConfig{})
}

// TestObsWindows forces small windows and checks the GC/alloc accounting
// rolls over.
func TestObsWindows(t *testing.T) {
	e := NewEngine()
	obs := e.AttachObs(ObsConfig{WindowEvents: 8, SampleStride: 2})
	var tick func()
	n := 0
	tick = func() {
		if n++; n < 50 {
			e.CallAfter(1, "w.tick", tick)
		}
	}
	e.Call(1, "w.tick", tick)
	e.Run()
	if w := obs.Windows(); len(w) < 5 {
		t.Fatalf("windows = %d, want >= 5", len(w))
	} else {
		var ev uint64
		for _, win := range w {
			ev += win.Events
			if win.HostNS < 0 {
				t.Fatalf("negative window host ns: %+v", win)
			}
		}
		if ev < 40 {
			t.Fatalf("windowed events = %d, want >= 40", ev)
		}
	}
	if obs.Samples() == 0 {
		t.Fatal("no host-time samples taken")
	}
}

// TestEngineHook checks the process-wide hook fires for new engines and
// restores cleanly.
func TestEngineHook(t *testing.T) {
	var seen []*Engine
	prev := SetEngineHook(func(e *Engine) { seen = append(seen, e) })
	defer SetEngineHook(prev)
	e1 := NewEngine()
	e2 := NewEngine()
	if len(seen) != 2 || seen[0] != e1 || seen[1] != e2 {
		t.Fatalf("hook saw %d engines", len(seen))
	}
	SetEngineHook(prev)
	_ = NewEngine()
	if len(seen) != 2 {
		t.Fatal("hook fired after restore")
	}
}

// TestQueueStatsCalendar checks the calendar queue's counters see traffic
// and the occupancy histogram sums to the bucket count.
func TestQueueStatsCalendar(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 2000; i++ {
		e.Call(Time(i%7), "q.ev", func() {})
	}
	s := e.QueueStats()
	if s.Kind != "calendar" {
		t.Fatalf("kind = %q", s.Kind)
	}
	if s.Pushes < 2000 {
		t.Fatalf("pushes = %d", s.Pushes)
	}
	if s.Collisions == 0 {
		t.Fatal("no collisions recorded despite same-time bursts")
	}
	if s.Len != 2000 {
		t.Fatalf("len = %d", s.Len)
	}
	var total int
	for _, n := range s.Occupancy {
		total += n
	}
	if total != s.Buckets {
		t.Fatalf("occupancy sums to %d, buckets = %d", total, s.Buckets)
	}
	if s.MaxDepth == 0 {
		t.Fatal("max depth zero with 2000 queued events")
	}
	e.Run()
	s = e.QueueStats()
	if s.Len != 0 {
		t.Fatalf("len after drain = %d", s.Len)
	}
	if s.Rebuilds == 0 || s.Grows == 0 {
		t.Fatalf("expected rebuilds after 2000-event burst: %+v", s)
	}
	if s.CollisionRate() <= 0 {
		t.Fatal("collision rate zero")
	}
}

// TestQueueStatsHeap checks the heap fallback reports its kind and size.
func TestQueueStatsHeap(t *testing.T) {
	prev := SetDefaultQueue(QueueHeap)
	defer SetDefaultQueue(prev)
	e := NewEngine()
	e.Call(1, "h.ev", func() {})
	s := e.QueueStats()
	if s.Kind != "heap" || s.Len != 1 {
		t.Fatalf("heap stats = %+v", s)
	}
}

// TestQueueStatsMerge exercises the aggregation used by multi-engine
// scenario reports.
func TestQueueStatsMerge(t *testing.T) {
	a := QueueStats{Kind: "calendar", Len: 1, Buckets: 256, Pushes: 10, Collisions: 2, MaxDepth: 3, Occupancy: []int{5, 1}}
	b := QueueStats{Kind: "calendar", Len: 2, Buckets: 512, Pushes: 30, Collisions: 2, MaxDepth: 2, Occupancy: []int{1, 1, 1}}
	a.Merge(b)
	if a.Len != 3 || a.Buckets != 512 || a.Pushes != 40 || a.Collisions != 4 || a.MaxDepth != 3 {
		t.Fatalf("merged = %+v", a)
	}
	if len(a.Occupancy) != 3 || a.Occupancy[0] != 6 || a.Occupancy[2] != 1 {
		t.Fatalf("merged occupancy = %v", a.Occupancy)
	}
	if r := a.CollisionRate(); r != 0.1 {
		t.Fatalf("collision rate = %v", r)
	}
}

package sim

import (
	"testing"
)

// eachQueueKind runs a subtest under both event-queue implementations,
// restoring the process default afterwards.
func eachQueueKind(t *testing.T, fn func(t *testing.T)) {
	t.Helper()
	for _, k := range []QueueKind{QueueCalendar, QueueHeap} {
		old := SetDefaultQueue(k)
		t.Run(k.String(), fn)
		SetDefaultQueue(old)
	}
}

// Regression: a pooled (Call/CallAfter) event cancelled before firing
// used to leak — the dispatch loop dropped cancelled events without
// returning pooled ones to the free list, so every cancelled timer
// (scheduler slices invalidated by preemption, ticker stops) cost a
// fresh allocation forever after. Both the pop path (Run) and the peek
// path (RunUntil's deadline check) must recycle.
func TestCancelledPooledEventIsRecycled(t *testing.T) {
	eachQueueKind(t, func(t *testing.T) {
		e := NewEngine()
		h := e.CallAfter(Millisecond, "victim", func() { t.Error("cancelled event fired") })
		if !h.Cancel() {
			t.Fatal("Cancel returned false for a pending event")
		}
		e.Run()
		if len(e.free) != 1 {
			t.Fatalf("free pool holds %d events after Run, want 1 (cancelled pooled event leaked)", len(e.free))
		}
		recycled := e.free[0]
		h2 := e.CallAfter(Millisecond, "reuse", func() {})
		if h2.ev != recycled {
			t.Fatal("next Call did not reuse the recycled allocation")
		}
		h2.Cancel()

		// Peek path: RunUntil must also recycle cancelled events it skips.
		e2 := NewEngine()
		h3 := e2.CallAfter(Millisecond, "victim2", func() { t.Error("cancelled event fired") })
		h3.Cancel()
		e2.RunUntil(2 * Millisecond)
		if len(e2.free) != 1 {
			t.Fatalf("free pool holds %d events after RunUntil, want 1", len(e2.free))
		}
	})
}

// A handle to a recycled-and-reused allocation must stay inert: the
// sequence stamp changes on reuse, so the stale Cancel cannot kill the
// unrelated event now occupying the same memory.
func TestStaleHandleAfterRecycleCannotCancelSuccessor(t *testing.T) {
	eachQueueKind(t, func(t *testing.T) {
		e := NewEngine()
		stale := e.CallAfter(Millisecond, "first", func() {})
		e.Run() // fires; allocation returns to the pool
		fired := false
		fresh := e.CallAfter(Millisecond, "second", func() { fired = true })
		if stale.ev != fresh.ev {
			t.Fatal("test setup: allocation was not reused")
		}
		if stale.Cancel() {
			t.Fatal("stale handle claimed to cancel")
		}
		e.Run()
		if !fired {
			t.Fatal("stale handle killed the successor event")
		}
	})
}

// Pins the Ticker/RunUntil contract at exact horizon boundaries: a tick
// landing exactly on the deadline fires within that RunUntil (the
// horizon is inclusive), its re-arm stays queued for the next run, and
// resuming produces no duplicate or missing tick at the seam. The
// invariant auditor's checkpoint/replay comparisons rely on straight
// runs and resumed runs counting the same ticks.
func TestTickerRunUntilExactHorizonBoundary(t *testing.T) {
	eachQueueKind(t, func(t *testing.T) {
		e := NewEngine()
		var fires []Time
		tk := e.Every(10*Millisecond, "tick", func() { fires = append(fires, e.Now()) })

		e.RunUntil(30 * Millisecond)
		if len(fires) != 3 || fires[2] != 30*Millisecond {
			t.Fatalf("after RunUntil(30ms): fires = %v, want [10ms 20ms 30ms]", fires)
		}
		if e.Now() != 30*Millisecond {
			t.Fatalf("clock = %v, want 30ms", e.Now())
		}

		e.RunUntil(60 * Millisecond)
		if len(fires) != 6 || fires[3] != 40*Millisecond || fires[5] != 60*Millisecond {
			t.Fatalf("after resume to 60ms: fires = %v, want six ticks ending at 60ms", fires)
		}

		// Stopping at the horizon: no tick may fire after Stop, and the
		// cancelled re-arm must not strand the clock.
		tk.Stop()
		e.RunUntil(100 * Millisecond)
		if len(fires) != 6 {
			t.Fatalf("ticks fired after Stop: %v", fires[6:])
		}
		if e.Now() != 100*Millisecond {
			t.Fatalf("clock = %v, want 100ms", e.Now())
		}
	})
}

// Differential check: both queue implementations dispatch any schedule —
// including heavy same-time contention — in the identical (at, seq)
// order. The calendar queue is only a valid default because this holds.
func TestCalendarMatchesHeapDispatchOrder(t *testing.T) {
	type rec struct {
		at Time
		id int
	}
	run := func(kind QueueKind) []rec {
		old := SetDefaultQueue(kind)
		defer SetDefaultQueue(old)
		e := NewEngine()
		rng := NewRNG(7)
		var got []rec
		for i := 0; i < 2000; i++ {
			id := i
			// Coarse quantization forces many exact ties; occasional huge
			// offsets force calendar-year wraparound.
			at := Time(rng.Int63n(50)) * Millisecond
			if rng.Intn(20) == 0 {
				at += Time(rng.Int63n(4)) * 40 * Second
			}
			e.At(at, "ev", func() { got = append(got, rec{e.Now(), id}) })
		}
		e.Run()
		return got
	}
	cal, heap := run(QueueCalendar), run(QueueHeap)
	if len(cal) != len(heap) {
		t.Fatalf("dispatch counts differ: calendar %d, heap %d", len(cal), len(heap))
	}
	for i := range cal {
		if cal[i] != heap[i] {
			t.Fatalf("dispatch %d differs: calendar %+v, heap %+v", i, cal[i], heap[i])
		}
	}
}

// Same-time FIFO must survive bucket rollover: two events a whole
// calendar "year" apart share a bucket slot, and a late-pushed earlier
// event must still pop first; same-instant events pop in seq order no
// matter which order they entered the bucket.
func TestCalQueueFIFOAcrossBucketRollover(t *testing.T) {
	c := newCalQueue()
	year := Time(int64(len(c.buckets)) * int64(c.width))
	mk := func(at Time, seq uint64) *Event { return &Event{at: at, seq: seq, index: -1} }

	// Same slot, different years, pushed out of time order.
	late := mk(year+c.width/2, 1)
	early := mk(c.width/2, 2)
	c.push(late)
	c.push(early)
	if got := c.pop(); got != early {
		t.Fatalf("popped %v first, want the earlier-year event", got.at)
	}
	if got := c.pop(); got != late {
		t.Fatalf("popped %v second, want the later-year event", got.at)
	}

	// Same instant, seq order, interleaved with a year-later neighbor in
	// the same slot and pushed in scrambled order.
	a := mk(year+c.width/4, 10)
	b := mk(year+c.width/4, 11)
	d := mk(2*year+c.width/4, 12)
	for _, ev := range []*Event{d, b, a} {
		c.push(ev)
	}
	for i, want := range []*Event{a, b, d} {
		if got := c.pop(); got != want {
			t.Fatalf("pop %d: got (at=%v seq=%d), want (at=%v seq=%d)",
				i, got.at, got.seq, want.at, want.seq)
		}
	}
	if c.pop() != nil {
		t.Fatal("queue should be empty")
	}
}

// The steady-state fire-and-forget path — pooled events, tickers, and
// the U64 operand form — must not allocate: the whole fast-core claim
// rests on dispatch being allocation-free once the pool is warm.
func TestSteadyStateDispatchIsZeroAlloc(t *testing.T) {
	eachQueueKind(t, func(t *testing.T) {
		e := NewEngine()
		fn := func() {}
		fnU := func(uint64) {}
		tk := e.Every(Millisecond, "tick", func() {})
		// Warm the pool and the ticker.
		for i := 0; i < 64; i++ {
			e.CallAfter(Microsecond, "warm", fn)
		}
		e.RunUntil(10 * Millisecond)

		if avg := testing.AllocsPerRun(200, func() {
			e.CallAfter(Microsecond, "pooled", fn)
			e.CallAfterU64(2*Microsecond, "pooledU", fnU, 42)
			h := e.CallAfter(3*Microsecond, "cancelled", fn)
			h.Cancel()
			e.RunUntil(e.Now() + 5*Microsecond)
		}); avg != 0 {
			t.Fatalf("steady-state dispatch allocates %v allocs/op, want 0", avg)
		}
		tk.Stop()
	})
}

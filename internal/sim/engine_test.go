package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 5, 25} {
		at := at
		e.At(at, "probe", func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{5, 10, 20, 25, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeEventsFireFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, "tie", func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break broken)", i, v, i)
		}
	}
}

func TestAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(50, "outer", func() {
		e.After(25, "inner", func() { fired = e.Now() })
	})
	e.Run()
	if fired != 75 {
		t.Fatalf("inner fired at %v, want 75", fired)
	}
}

func TestAfterClampsNegativeDelay(t *testing.T) {
	e := NewEngine()
	ran := false
	e.At(10, "outer", func() {
		e.After(-5, "inner", func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event never ran")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, "advance", func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(50, "late", func() {})
}

func TestCancelPreventsFiring(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, "victim", func() { ran = true })
	ev.Cancel()
	e.Run()
	if ran {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() = false after Cancel")
	}
}

func TestCancelFromEarlierEvent(t *testing.T) {
	e := NewEngine()
	ran := false
	victim := e.At(20, "victim", func() { ran = true })
	e.At(10, "killer", func() { victim.Cancel() })
	e.Run()
	if ran {
		t.Fatal("event cancelled mid-run still fired")
	}
}

func TestPendingReflectsQueue(t *testing.T) {
	e := NewEngine()
	ev := e.At(10, "a", func() {})
	if !ev.Pending() {
		t.Fatal("queued event not Pending")
	}
	e.Run()
	if ev.Pending() {
		t.Fatal("fired event still Pending")
	}
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, "probe", func() { fired = append(fired, at) })
	}
	n := e.RunUntil(25)
	if n != 2 {
		t.Fatalf("dispatched %d, want 2", n)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %v, want clock advanced to deadline 25", e.Now())
	}
	if e.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2 still queued", e.Pending())
	}
	// The rest still run afterwards.
	e.Run()
	if len(fired) != 4 {
		t.Fatalf("total fired %d, want 4", len(fired))
	}
}

func TestRunUntilWithEmptyQueueAdvancesClock(t *testing.T) {
	e := NewEngine()
	e.RunUntil(500)
	if e.Now() != 500 {
		t.Fatalf("Now() = %v, want 500", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), "n", func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("ran %d events before Stop, want 3", count)
	}
	// Run resumes where it left off.
	e.Run()
	if count != 10 {
		t.Fatalf("after resume ran %d total, want 10", count)
	}
}

func TestTickerFiresAtPeriod(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	tk := e.Every(10*Millisecond, "tick", func() {
		ticks = append(ticks, e.Now())
		if len(ticks) == 5 {
			e.Stop()
		}
	})
	defer tk.Stop()
	e.Run()
	if len(ticks) != 5 {
		t.Fatalf("got %d ticks, want 5", len(ticks))
	}
	for i, at := range ticks {
		want := Time(i+1) * 10 * Millisecond
		if at != want {
			t.Fatalf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestTickerStopFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	tk = e.Every(Millisecond, "tick", func() {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times after Stop at 3", count)
	}
}

func TestTickerStopOutsideCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	tk := e.Every(Millisecond, "tick", func() { count++ })
	e.At(3500*Microsecond, "stopper", func() { tk.Stop() })
	e.Run()
	if count != 3 {
		t.Fatalf("ticker fired %d times, want 3 before stop at 3.5ms", count)
	}
}

func TestDispatchedCounts(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.At(Time(i), "n", func() {})
	}
	e.Run()
	if e.Dispatched() != 7 {
		t.Fatalf("Dispatched() = %d, want 7", e.Dispatched())
	}
}

// Property: however events are scheduled (any set of non-negative offsets),
// they fire in nondecreasing time order and all of them fire.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		for _, off := range offsets {
			e.At(Time(off), "p", func() {})
		}
		var last Time = -1
		fired := 0
		for {
			before := e.Now()
			if !e.Step() {
				break
			}
			_ = before
			if e.Now() < last {
				return false
			}
			last = e.Now()
			fired++
		}
		return fired == len(offsets)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: nested scheduling from inside callbacks never observes the
// clock move backwards.
func TestPropertyNestedSchedulingMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		e := NewEngine()
		r := NewRNG(seed)
		ok := true
		var last Time
		depth := 0
		var spawn func()
		spawn = func() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
			if depth < 200 {
				depth++
				e.After(Time(r.Intn(1000)), "child", spawn)
			}
		}
		e.At(0, "root", spawn)
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Regression: Stop() during RunUntil must halt the clock at the stop
// point, not teleport it to the deadline. The seed engine advanced
// e.now to the deadline unconditionally, so a kernel that stopped at
// t=10 reported makespans inflated to whatever deadline the caller
// passed.
func TestRunUntilStoppedEarlyDoesNotAdvanceToDeadline(t *testing.T) {
	e := NewEngine()
	e.At(10, "stopper", func() { e.Stop() })
	e.At(20, "later", func() {})
	n := e.RunUntil(1000)
	if n != 1 {
		t.Fatalf("dispatched %d, want 1 (stop after first event)", n)
	}
	if e.Now() != 10 {
		t.Fatalf("Now() = %v after Stop at 10, want 10 (not deadline 1000)", e.Now())
	}
	// Resuming still drains up to the deadline and then advances.
	n = e.RunUntil(1000)
	if n != 1 {
		t.Fatalf("resume dispatched %d, want 1", n)
	}
	if e.Now() != 1000 {
		t.Fatalf("Now() = %v after drain, want deadline 1000", e.Now())
	}
}

func TestCallAfterFiresInOrderWithHandles(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(20, "handle", func() { order = append(order, "handle") })
	e.CallAfter(10, "pooled", func() { order = append(order, "pooled") })
	e.Call(5, "at", func() { order = append(order, "at") })
	e.Run()
	want := []string{"at", "pooled", "handle"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// Pooled events may be recycled the moment they fire; scheduling from
// inside a pooled callback must not corrupt the event being dispatched.
func TestCallAfterRescheduleFromCallback(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.CallAfter(Millisecond, "tick", tick)
		}
	}
	e.CallAfter(Millisecond, "tick", tick)
	e.Run()
	if count != 100 {
		t.Fatalf("pooled chain fired %d times, want 100", count)
	}
	if e.Now() != 100*Millisecond {
		t.Fatalf("Now() = %v, want 100ms", e.Now())
	}
}

// The free list must actually recycle: a long chain of pooled events
// should keep the engine's backing storage flat.
func TestPooledEventsAreRecycled(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 1000; i++ {
		e.CallAfter(Microsecond, "n", func() {})
		e.Step()
	}
	if got := len(e.free); got != 1 {
		t.Fatalf("free list holds %d events after steady-state chain, want 1", got)
	}
}

// Handles returned by At/After must never be recycled — a caller may
// retain one and Cancel it long after it fired; that must stay a no-op
// on an inert event rather than corrupting a recycled one.
func TestStaleHandleCancelIsInert(t *testing.T) {
	e := NewEngine()
	stale := e.At(1, "old", func() {})
	e.Run()
	fired := false
	e.CallAfter(Microsecond, "live", func() { fired = true })
	stale.Cancel() // must not touch the pooled live event
	e.Run()
	if !fired {
		t.Fatal("Cancel on a stale fired handle killed an unrelated pooled event")
	}
}

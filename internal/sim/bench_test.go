package sim

import "testing"

// BenchmarkScheduleAndFire measures raw event throughput: one schedule
// plus one dispatch per op.
func BenchmarkScheduleAndFire(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.After(Microsecond, "bench", func() {})
		e.Step()
	}
}

// BenchmarkDeepQueue measures heap behaviour with many pending events.
func BenchmarkDeepQueue(b *testing.B) {
	e := NewEngine()
	const depth = 4096
	for i := 0; i < depth; i++ {
		e.After(Time(i)*Microsecond, "fill", func() {})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(Time(depth)*Microsecond, "bench", func() {})
		e.Step()
	}
}

// BenchmarkCancel measures cancellation cost (lazy removal).
func BenchmarkCancel(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		ev := e.After(Second, "bench", func() {})
		ev.Cancel()
		if e.Pending() > 10000 {
			e.RunUntil(e.Now()) // drop cancelled events via peek
			b.StopTimer()
			e = NewEngine()
			b.StartTimer()
		}
	}
}

// BenchmarkRNG measures the PRNG.
func BenchmarkRNG(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

// BenchmarkCallAndFire measures the pooled fire-and-forget path: the
// free list should make this allocation-free at steady state.
func BenchmarkCallAndFire(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CallAfter(Microsecond, "bench", fn)
		e.Step()
	}
}

package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 draws identical across different seeds", same)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := NewRNG(7)
	child := parent.Fork()
	// The child stream must not simply replay the parent stream.
	p1 := parent.Uint64()
	c1 := child.Uint64()
	if p1 == c1 {
		t.Fatal("forked stream mirrors parent")
	}
	// Forking is itself deterministic.
	p2 := NewRNG(7)
	c2 := p2.Fork()
	if c2.Uint64() != c1 {
		t.Fatal("fork not reproducible from same seed")
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d out of range", v)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of Float64 draws = %g, want ~0.5", mean)
	}
}

func TestDurationBounds(t *testing.T) {
	r := NewRNG(11)
	lo, hi := 5*Millisecond, 9*Millisecond
	for i := 0; i < 10000; i++ {
		d := r.Duration(lo, hi)
		if d < lo || d > hi {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if d := r.Duration(lo, lo); d != lo {
		t.Fatalf("degenerate Duration = %v, want %v", d, lo)
	}
}

func TestExpMeanAndTruncation(t *testing.T) {
	r := NewRNG(13)
	mean := 10 * Millisecond
	var sum Time
	const n = 200000
	for i := 0; i < n; i++ {
		d := r.Exp(mean)
		if d < 0 || d > 20*mean {
			t.Fatalf("Exp draw %v outside [0, 20*mean]", d)
		}
		sum += d
	}
	got := float64(sum) / n / float64(mean)
	if math.Abs(got-1.0) > 0.02 {
		t.Fatalf("Exp empirical mean = %.3f of requested, want ~1.0", got)
	}
	if r.Exp(0) != 0 {
		t.Fatal("Exp(0) should be 0")
	}
}

func TestPermIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		p := r.Perm(30)
		seen := make([]bool, 30)
		for _, v := range p {
			if v < 0 || v >= 30 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

package sim

import "fmt"

// evqueue is the pending-event priority structure behind an Engine. Two
// implementations exist: the calendar queue (the default — amortized O(1)
// enqueue/dequeue under the quasi-stationary event populations a machine
// simulation produces) and the binary min-heap the engine shipped with,
// kept behind a flag for differential testing. Both dequeue in exactly
// (at, seq) order, so a run is byte-identical under either.
type evqueue interface {
	// push inserts an event.
	push(ev *Event)
	// pop removes and returns the earliest event (by at, then seq), or
	// nil when empty. Cancelled events are returned like any other; the
	// engine filters them.
	pop() *Event
	// min returns the earliest event without removing it, or nil.
	min() *Event
	// size returns the number of queued events, including cancelled ones
	// not yet dropped.
	size() int
	// each visits every queued event in unspecified order.
	each(fn func(*Event))
}

// QueueKind selects an event-queue implementation.
type QueueKind int

const (
	// QueueCalendar is the calendar queue (default).
	QueueCalendar QueueKind = iota
	// QueueHeap is the binary min-heap fallback.
	QueueHeap
)

// String names the kind ("calendar", "heap").
func (k QueueKind) String() string {
	switch k {
	case QueueCalendar:
		return "calendar"
	case QueueHeap:
		return "heap"
	default:
		return fmt.Sprintf("queue(%d)", int(k))
	}
}

// ParseQueueKind resolves a -eventq flag value.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "", "calendar", "cal":
		return QueueCalendar, nil
	case "heap":
		return QueueHeap, nil
	default:
		return 0, fmt.Errorf("sim: unknown event queue %q (want calendar or heap)", s)
	}
}

// defaultQueue is the implementation NewEngine picks. It is a process-wide
// default so differential harnesses (pisobench -eventq heap, the
// byte-identical registry test) can flip every engine a run builds without
// threading a parameter through each experiment constructor.
var defaultQueue = QueueCalendar

// SetDefaultQueue selects the queue implementation future NewEngine calls
// use and returns the previous default. Not safe to call concurrently
// with engine construction; flip it once at process or test start.
func SetDefaultQueue(k QueueKind) QueueKind {
	old := defaultQueue
	defaultQueue = k
	return old
}

// DefaultQueue returns the implementation NewEngine currently picks.
func DefaultQueue() QueueKind { return defaultQueue }

func newQueue(k QueueKind) evqueue {
	switch k {
	case QueueHeap:
		return &heapQueue{}
	default:
		return newCalQueue()
	}
}

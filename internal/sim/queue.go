package sim

import "fmt"

// evqueue is the pending-event priority structure behind an Engine. Two
// implementations exist: the calendar queue (the default — amortized O(1)
// enqueue/dequeue under the quasi-stationary event populations a machine
// simulation produces) and the binary min-heap the engine shipped with,
// kept behind a flag for differential testing. Both dequeue in exactly
// (at, seq) order, so a run is byte-identical under either.
type evqueue interface {
	// push inserts an event.
	push(ev *Event)
	// pop removes and returns the earliest event (by at, then seq), or
	// nil when empty. Cancelled events are returned like any other; the
	// engine filters them.
	pop() *Event
	// min returns the earliest event without removing it, or nil.
	min() *Event
	// size returns the number of queued events, including cancelled ones
	// not yet dropped.
	size() int
	// each visits every queued event in unspecified order.
	each(fn func(*Event))
	// stats snapshots the queue's internal telemetry (ISSUE 10): cheap
	// always-on counters plus an occupancy census computed at call time.
	stats() QueueStats
}

// QueueStats is one event queue's internal telemetry: always-on push
// and structural counters (cheap integer increments, never allocating)
// plus an occupancy census taken at snapshot time. For the heap
// fallback only Kind and Len are meaningful.
type QueueStats struct {
	// Kind names the implementation ("calendar", "heap").
	Kind string
	// Len is the number of queued events at snapshot time.
	Len int
	// Buckets is the current calendar size; Width the current day width.
	Buckets int
	Width   Time
	// Pushes counts every enqueue; Collisions the pushes that landed in
	// a day bucket already holding a live event (same-slot collisions —
	// the in-bucket insertion-sort work the calendar pays).
	Pushes     uint64
	Collisions uint64
	// Rebuilds counts calendar reconstructions; Grows/Shrinks split them
	// by direction.
	Rebuilds uint64
	Grows    uint64
	Shrinks  uint64
	// MaxDepth is the deepest live bucket at snapshot time; Occupancy is
	// the live-depth histogram: Occupancy[d] buckets hold d events, the
	// last cell aggregating every deeper bucket.
	MaxDepth  int
	Occupancy []int
	// WidthLog records the day-width evolution: one entry per rebuild
	// (capped), so the report can show how the calendar adapted to the
	// scenario's event rate.
	WidthLog []WidthChange
}

// WidthChange is one calendar rebuild in a QueueStats width log.
type WidthChange struct {
	// Width is the day width chosen by the rebuild; Buckets the new
	// calendar size; Events the population that was redistributed.
	Width   Time
	Buckets int
	Events  int
}

// Merge folds another queue's stats into s (summing counters, keeping
// structural maxima), for reports that aggregate every engine a
// scenario built.
func (s *QueueStats) Merge(o QueueStats) {
	if s.Kind == "" {
		s.Kind = o.Kind
	}
	s.Len += o.Len
	if o.Buckets > s.Buckets {
		s.Buckets = o.Buckets
	}
	if o.Width > s.Width {
		s.Width = o.Width
	}
	s.Pushes += o.Pushes
	s.Collisions += o.Collisions
	s.Rebuilds += o.Rebuilds
	s.Grows += o.Grows
	s.Shrinks += o.Shrinks
	if o.MaxDepth > s.MaxDepth {
		s.MaxDepth = o.MaxDepth
	}
	for len(s.Occupancy) < len(o.Occupancy) {
		s.Occupancy = append(s.Occupancy, 0)
	}
	for i, n := range o.Occupancy {
		s.Occupancy[i] += n
	}
	s.WidthLog = append(s.WidthLog, o.WidthLog...)
}

// CollisionRate is the fraction of pushes that hit an occupied bucket.
func (s QueueStats) CollisionRate() float64 {
	if s.Pushes == 0 {
		return 0
	}
	return float64(s.Collisions) / float64(s.Pushes)
}

// QueueKind selects an event-queue implementation.
type QueueKind int

const (
	// QueueCalendar is the calendar queue (default).
	QueueCalendar QueueKind = iota
	// QueueHeap is the binary min-heap fallback.
	QueueHeap
)

// String names the kind ("calendar", "heap").
func (k QueueKind) String() string {
	switch k {
	case QueueCalendar:
		return "calendar"
	case QueueHeap:
		return "heap"
	default:
		return fmt.Sprintf("queue(%d)", int(k))
	}
}

// ParseQueueKind resolves a -eventq flag value.
func ParseQueueKind(s string) (QueueKind, error) {
	switch s {
	case "", "calendar", "cal":
		return QueueCalendar, nil
	case "heap":
		return QueueHeap, nil
	default:
		return 0, fmt.Errorf("sim: unknown event queue %q (want calendar or heap)", s)
	}
}

// defaultQueue is the implementation NewEngine picks. It is a process-wide
// default so differential harnesses (pisobench -eventq heap, the
// byte-identical registry test) can flip every engine a run builds without
// threading a parameter through each experiment constructor.
var defaultQueue = QueueCalendar

// SetDefaultQueue selects the queue implementation future NewEngine calls
// use and returns the previous default. Not safe to call concurrently
// with engine construction; flip it once at process or test start.
func SetDefaultQueue(k QueueKind) QueueKind {
	old := defaultQueue
	defaultQueue = k
	return old
}

// DefaultQueue returns the implementation NewEngine currently picks.
func DefaultQueue() QueueKind { return defaultQueue }

func newQueue(k QueueKind) evqueue {
	switch k {
	case QueueHeap:
		return &heapQueue{}
	default:
		return newCalQueue()
	}
}

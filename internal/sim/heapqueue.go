package sim

// heapQueue is the original binary min-heap event queue, kept as the
// differential-testing fallback for the calendar queue (-eventq heap).
// The heap is hand-rolled rather than container/heap so comparisons and
// moves stay concrete (*Event) instead of boxing through an interface on
// every scheduler tick, disk request, and page fault.
type heapQueue struct {
	q []*Event
}

func (h *heapQueue) size() int { return len(h.q) }

// stats reports the little telemetry a heap has: its kind and size. The
// calendar-specific structural counters stay zero.
func (h *heapQueue) stats() QueueStats {
	return QueueStats{Kind: QueueHeap.String(), Len: len(h.q)}
}

func (h *heapQueue) each(fn func(*Event)) {
	for _, ev := range h.q {
		fn(ev)
	}
}

func (h *heapQueue) min() *Event {
	if len(h.q) == 0 {
		return nil
	}
	return h.q[0]
}

// push inserts ev, sifting it up to its position.
func (h *heapQueue) push(ev *Event) {
	i := len(h.q)
	h.q = append(h.q, ev)
	q := h.q
	for i > 0 {
		parent := (i - 1) / 2
		p := q[parent]
		if !eventLess(ev, p) {
			break
		}
		q[i] = p
		p.index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down by comparing sibling children at each level.
func (h *heapQueue) pop() *Event {
	if len(h.q) == 0 {
		return nil
	}
	q := h.q
	n := len(q) - 1
	top := q[0]
	top.index = -1
	ev := q[n]
	q[n] = nil
	h.q = q[:n]
	if n == 0 {
		return top
	}
	q = h.q
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := q[l]
		if r := l + 1; r < n && eventLess(q[r], c) {
			l, c = r, q[r]
		}
		if !eventLess(c, ev) {
			break
		}
		q[i] = c
		c.index = i
		i = l
	}
	q[i] = ev
	ev.index = i
	return top
}

package sim

import (
	"fmt"
	"sort"

	"perfiso/internal/snap"
)

// Snapshot writes the engine's externally-visible state: the clock, the
// event-sequence counters, and every pending (non-cancelled) event in
// firing order. Two deterministic runs that took the same path have
// byte-identical engine snapshots; when a replay diverges, the first
// differing pending-event line names the subsystem that scheduled it.
func (e *Engine) Snapshot(enc *snap.Encoder) {
	enc.Section("sim")
	enc.Int("now", int64(e.now))
	enc.Uint("seq", e.seq)
	enc.Uint("dispatched", e.dispatched)
	live := make([]*Event, 0, e.q.size())
	e.q.each(func(ev *Event) {
		if !ev.cancelled {
			live = append(live, ev)
		}
	})
	sort.Slice(live, func(i, j int) bool { return eventLess(live[i], live[j]) })
	enc.Int("pending", int64(len(live)))
	for i, ev := range live {
		enc.Str(fmt.Sprintf("ev%d", i), fmt.Sprintf("%d:%d %s", int64(ev.at), ev.seq, ev.name))
	}
}

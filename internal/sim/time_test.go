package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond || Microsecond != 1000*Nanosecond {
		t.Fatal("unit ladder inconsistent")
	}
}

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		t   Time
		sec float64
		ms  float64
	}{
		{Second, 1, 1000},
		{500 * Millisecond, 0.5, 500},
		{Microsecond, 1e-6, 1e-3},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := c.t.Seconds(); got != c.sec {
			t.Errorf("%v.Seconds() = %g, want %g", c.t, got, c.sec)
		}
		if got := c.t.Milliseconds(); got != c.ms {
			t.Errorf("%v.Milliseconds() = %g, want %g", c.t, got, c.ms)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	f := func(ms uint32) bool {
		tt := FromMilliseconds(float64(ms))
		return tt == Time(ms)*Millisecond
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	if FromSeconds(2.5) != 2500*Millisecond {
		t.Fatalf("FromSeconds(2.5) = %v", FromSeconds(2.5))
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{Forever, "forever"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
	// Spot-check the unit selection for larger values.
	if s := (250 * Microsecond).String(); !strings.HasSuffix(s, "us") {
		t.Errorf("250us rendered as %q", s)
	}
	if s := (42 * Millisecond).String(); !strings.HasSuffix(s, "ms") {
		t.Errorf("42ms rendered as %q", s)
	}
	if s := (3 * Second).String(); !strings.HasSuffix(s, "s") || strings.HasSuffix(s, "ms") {
		t.Errorf("3s rendered as %q", s)
	}
	if s := (-Millisecond).String(); !strings.HasPrefix(s, "-") {
		t.Errorf("negative time rendered as %q", s)
	}
}

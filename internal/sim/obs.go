package sim

import (
	"fmt"
	"runtime/metrics"
	"sort"
	"time"
)

// This file is the engine half of the simulator self-observability layer
// (internal/simobs builds reports on top of it). An Obs attached to an
// Engine watches three things the paper-style methodology needs for the
// simulator itself:
//
//   - an event-class census: how many events each callback site
//     dispatched (tick, slice-end, disk completion, lock grant, ...);
//   - host-time attribution: stride-sampled wall-clock nanoseconds
//     credited to the module whose event was executing at each sample,
//     with GC/alloc counters folded into fixed-size event windows;
//   - resource-domain causality: every event carries the domain its
//     callback executes in (per-disk, per-node, global), and every
//     schedule issued from inside a dispatch is classified as intra- or
//     cross-domain, with the cross edges keeping lookahead statistics —
//     the input for the conservative-parallelization feasibility report.
//
// When no Obs is attached (the default) the engine pays exactly one nil
// check per schedule and per dispatch and allocates nothing; the
// zero-alloc dispatch guards in internal/kernel enforce that. When
// attached, the census costs one map probe at schedule time (the class
// id is stamped on the event and reused at dispatch), domains are small
// array indexes, and wall-clock reads happen only every SampleStride
// dispatches — the whole layer stays within a few percent of ns/event.

// obsMaxDomains bounds the domain universe so the cross-domain edge
// matrix can be a flat array instead of a map on the schedule path.
// Domains past the cap collapse into the last slot ("overflow").
const obsMaxDomains = 16

// ObsConfig tunes an engine observer.
type ObsConfig struct {
	// Classify maps an event name (callback site) to the module that
	// executes it and the resource domain it belongs to. Nil uses the
	// site prefix before the first '.' as the module and "global" as the
	// domain. internal/simobs installs the kernel-aware classifier.
	Classify func(name string) (module, domain string)
	// SampleStride is how many dispatches share one wall-clock read
	// (default 32): the whole inter-sample window is attributed to the
	// module executing at the sample, classic sampling-profiler style.
	SampleStride int
	// WindowEvents is the GC/alloc accounting window in events
	// (default 65536).
	WindowEvents int
}

// obsEdge accumulates one (from domain, to domain) causality edge.
type obsEdge struct {
	count uint64
	sumLA int64 // summed lookahead, ns
	minLA int64
}

// ObsEdgeStat is one cross-domain causality edge in snapshot form: how
// often events executing in From scheduled events that will execute in
// To, and how far in the future they were scheduled (the lookahead a
// conservative parallel simulation could exploit on that edge).
type ObsEdgeStat struct {
	From, To     string
	Count        uint64
	SumLookahead Time
	MinLookahead Time
}

// ObsClassStat is one callback site in snapshot form.
type ObsClassStat struct {
	Name   string
	Module string
	Domain string
	// Count is the number of dispatches (deterministic).
	Count uint64
	// HostNS is sampled wall-clock attributed to the class
	// (nondeterministic; zero when the class never held a sample).
	HostNS int64
}

// ObsWindow is one completed GC/alloc accounting window.
type ObsWindow struct {
	Events       uint64
	HostNS       int64
	GCCycles     uint64
	AllocObjects uint64
	AllocBytes   uint64
}

// Obs is an engine observer. It is attached with Engine.AttachObs
// before any event is scheduled and read after the run quiesces.
type Obs struct {
	classify     func(string) (string, string)
	stride       uint32
	windowEvents uint64

	classIDs     map[string]uint16
	classNames   []string
	classModules []uint16
	classDomains []uint8
	classCounts  []uint64
	classHostNS  []int64

	moduleIDs   map[string]uint16
	moduleNames []string

	domainIDs   map[string]uint8
	domainNames []string

	// Schedule-edge state. curDomain/dispatching describe the event
	// whose callback is currently running.
	curDomain   uint8
	dispatching bool
	intra       uint64
	cross       uint64
	external    uint64
	edges       [obsMaxDomains * obsMaxDomains]obsEdge

	// Host-time sampling.
	sinceSample uint32
	lastSample  int64
	samples     uint64

	// GC/alloc windows.
	sinceWindow  uint64
	windowHost   int64
	windows      []ObsWindow
	msamples     []metrics.Sample
	lastGC       uint64
	lastAllocs   uint64
	lastAllocBts uint64
}

// obsEpoch anchors the monotonic host clock all observers share.
var obsEpoch = time.Now()

// hostNow returns monotonic host nanoseconds since process start.
func hostNow() int64 { return int64(time.Since(obsEpoch)) }

func newObs(cfg ObsConfig) *Obs {
	if cfg.SampleStride <= 0 {
		cfg.SampleStride = 32
	}
	if cfg.WindowEvents <= 0 {
		cfg.WindowEvents = 1 << 16
	}
	o := &Obs{
		classify:     cfg.Classify,
		stride:       uint32(cfg.SampleStride),
		windowEvents: uint64(cfg.WindowEvents),
		classIDs:     make(map[string]uint16, 64),
		moduleIDs:    make(map[string]uint16, 16),
		domainIDs:    make(map[string]uint8, obsMaxDomains),
		msamples: []metrics.Sample{
			{Name: "/gc/cycles/total:gc-cycles"},
			{Name: "/gc/heap/allocs:objects"},
			{Name: "/gc/heap/allocs:bytes"},
		},
	}
	if o.classify == nil {
		o.classify = func(name string) (string, string) {
			for i := 0; i < len(name); i++ {
				if name[i] == '.' {
					return name[:i], "global"
				}
			}
			return name, "global"
		}
	}
	o.windowHost = hostNow()
	metrics.Read(o.msamples)
	o.lastGC = o.msamples[0].Value.Uint64()
	o.lastAllocs = o.msamples[1].Value.Uint64()
	o.lastAllocBts = o.msamples[2].Value.Uint64()
	return o
}

// AttachObs attaches an observer to the engine. It must be called
// before any event is scheduled — every event is classified exactly
// once, at schedule time — and at most once per engine (a second call
// returns the existing observer unchanged).
func (e *Engine) AttachObs(cfg ObsConfig) *Obs {
	if e.obs != nil {
		return e.obs
	}
	if e.seq != 0 {
		panic(fmt.Sprintf("sim: AttachObs after %d events were scheduled", e.seq))
	}
	e.obs = newObs(cfg)
	return e.obs
}

// Obs returns the attached observer, or nil when the engine runs dark.
func (e *Engine) Obs() *Obs { return e.obs }

// classOf interns an event name, classifying it on first sight.
func (o *Obs) classOf(name string) uint16 {
	if id, ok := o.classIDs[name]; ok {
		return id
	}
	module, domain := o.classify(name)
	mid, ok := o.moduleIDs[module]
	if !ok {
		mid = uint16(len(o.moduleNames))
		o.moduleIDs[module] = mid
		o.moduleNames = append(o.moduleNames, module)
	}
	did, ok := o.domainIDs[domain]
	if !ok {
		if len(o.domainNames) >= obsMaxDomains {
			did = obsMaxDomains - 1
		} else {
			did = uint8(len(o.domainNames))
			o.domainNames = append(o.domainNames, domain)
		}
		o.domainIDs[domain] = did
	}
	id := uint16(len(o.classNames))
	o.classNames = append(o.classNames, name)
	o.classModules = append(o.classModules, mid)
	o.classDomains = append(o.classDomains, did)
	o.classCounts = append(o.classCounts, 0)
	o.classHostNS = append(o.classHostNS, 0)
	o.classIDs[name] = id
	return id
}

// onSchedule stamps the event's class and, when the schedule was issued
// from inside another event's callback, classifies the causality edge.
func (o *Obs) onSchedule(ev *Event, now Time) {
	id := o.classOf(ev.name)
	ev.class = id
	if !o.dispatching {
		o.external++
		return
	}
	d := o.classDomains[id]
	if d == o.curDomain {
		o.intra++
		return
	}
	o.cross++
	e := &o.edges[int(o.curDomain)*obsMaxDomains+int(d)]
	la := int64(ev.at - now)
	e.count++
	e.sumLA += la
	if e.count == 1 || la < e.minLA {
		e.minLA = la
	}
}

// beginDispatch records a dispatch of the given class and takes the
// occasional wall-clock sample.
func (o *Obs) beginDispatch(class uint16) {
	o.classCounts[class]++
	o.curDomain = o.classDomains[class]
	o.dispatching = true
	if o.sinceSample++; o.sinceSample >= o.stride {
		o.sinceSample = 0
		now := hostNow()
		if d := now - o.lastSample; o.lastSample != 0 && d > 0 {
			o.classHostNS[class] += d
		}
		o.lastSample = now
		o.samples++
	}
	if o.sinceWindow++; o.sinceWindow >= o.windowEvents {
		o.rollWindow()
	}
}

// endDispatch marks the callback finished, so schedules issued outside
// any dispatch (setup code between runs) count as external.
func (o *Obs) endDispatch() { o.dispatching = false }

// rollWindow closes one GC/alloc accounting window.
func (o *Obs) rollWindow() {
	events := o.sinceWindow
	o.sinceWindow = 0
	now := hostNow()
	metrics.Read(o.msamples)
	gc := o.msamples[0].Value.Uint64()
	objs := o.msamples[1].Value.Uint64()
	bts := o.msamples[2].Value.Uint64()
	o.windows = append(o.windows, ObsWindow{
		Events:       events,
		HostNS:       now - o.windowHost,
		GCCycles:     gc - o.lastGC,
		AllocObjects: objs - o.lastAllocs,
		AllocBytes:   bts - o.lastAllocBts,
	})
	o.windowHost = now
	o.lastGC, o.lastAllocs, o.lastAllocBts = gc, objs, bts
}

// Classes snapshots the census, sorted by name so every downstream
// artifact is deterministic.
func (o *Obs) Classes() []ObsClassStat {
	out := make([]ObsClassStat, 0, len(o.classNames))
	for i, name := range o.classNames {
		out = append(out, ObsClassStat{
			Name:   name,
			Module: o.moduleNames[o.classModules[i]],
			Domain: o.domainNames[o.classDomains[i]],
			Count:  o.classCounts[i],
			HostNS: o.classHostNS[i],
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Edges snapshots the non-empty cross-domain causality edges, sorted by
// (From, To).
func (o *Obs) Edges() []ObsEdgeStat {
	var out []ObsEdgeStat
	for f := 0; f < len(o.domainNames); f++ {
		for t := 0; t < len(o.domainNames); t++ {
			e := o.edges[f*obsMaxDomains+t]
			if e.count == 0 {
				continue
			}
			out = append(out, ObsEdgeStat{
				From:         o.domainNames[f],
				To:           o.domainNames[t],
				Count:        e.count,
				SumLookahead: Time(e.sumLA),
				MinLookahead: Time(e.minLA),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// EdgeTotals reports how schedules split: issued inside a dispatch into
// the same domain (intra), into another domain (cross), or outside any
// dispatch (external, e.g. workload setup).
func (o *Obs) EdgeTotals() (intra, cross, external uint64) {
	return o.intra, o.cross, o.external
}

// Domains lists the domains seen, in registration order.
func (o *Obs) Domains() []string {
	return append([]string(nil), o.domainNames...)
}

// Samples reports how many wall-clock samples were taken.
func (o *Obs) Samples() uint64 { return o.samples }

// Windows returns the completed GC/alloc windows.
func (o *Obs) Windows() []ObsWindow {
	return append([]ObsWindow(nil), o.windows...)
}

// engineHook, when set, observes every engine the process builds —
// internal/simobs installs a hook that attaches observers, so whole
// registry scenarios can be instrumented without threading a parameter
// through each experiment constructor (the SetDefaultQueue precedent).
var engineHook func(*Engine)

// SetEngineHook installs fn to be called with every future NewEngine
// result and returns the previous hook for restoration. Not safe to
// call concurrently with engine construction; harnesses install it
// around sequential runs.
func SetEngineHook(fn func(*Engine)) func(*Engine) {
	prev := engineHook
	engineHook = fn
	return prev
}

package control

import "perfiso/internal/sim"

// RetryPolicy bounds a retry loop. The old fs/mem/kernel retry loops
// backed off exponentially but retried forever at full cadence: under
// a long disk fault every stuck request kept resubmitting every Max,
// and the retry storm itself became an interference source. A
// RetryPolicy keeps the exact same exponential schedule (Base doubling
// to Max) until the request has spent Budget waiting — its deadline
// budget — and then forces the caller onto its degraded path: fail
// over to a healthy disk where the data allows it, or throttle to the
// SlowLane cadence where it does not.
type RetryPolicy struct {
	Base     sim.Time // first backoff
	Max      sim.Time // backoff ceiling
	Budget   sim.Time // total backoff allowed before the degraded path
	SlowLane sim.Time // retry cadence once the budget is spent
}

// DefaultRetryPolicy matches the old loops' 5 ms → 80 ms schedule and
// adds a 320 ms budget (about seven attempts) with a 160 ms slow lane.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		Base:     5 * sim.Millisecond,
		Max:      80 * sim.Millisecond,
		Budget:   320 * sim.Millisecond,
		SlowLane: 160 * sim.Millisecond,
	}
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	d := DefaultRetryPolicy()
	if p.Base <= 0 {
		p.Base = d.Base
	}
	if p.Max <= 0 {
		p.Max = d.Max
	}
	if p.Budget <= 0 {
		p.Budget = d.Budget
	}
	if p.SlowLane <= 0 {
		p.SlowLane = d.SlowLane
	}
	return p
}

// Budget tracks one request's retry spending against a policy. The
// zero value is not usable; get one from NewBudget.
type Budget struct {
	p     RetryPolicy
	spent sim.Time
	next  sim.Time
}

// NewBudget starts a fresh budget for one request.
func (p RetryPolicy) NewBudget() Budget {
	p = p.withDefaults()
	return Budget{p: p, next: p.Base}
}

// Next returns how long to back off before the next attempt.
// degraded=false means the budget still covers the attempt and wait
// follows the exponential schedule; degraded=true means the budget is
// exhausted — wait is the slow-lane cadence and the caller should take
// its degraded path (fail over, or keep retrying only at this bounded
// rate).
func (b *Budget) Next() (wait sim.Time, degraded bool) {
	if b.spent >= b.p.Budget {
		return b.p.SlowLane, true
	}
	wait = b.next
	if b.next < b.p.Max {
		b.next *= 2
		if b.next > b.p.Max {
			b.next = b.p.Max
		}
	}
	b.spent += wait
	return wait, false
}

// Spent returns the total backoff consumed so far.
func (b *Budget) Spent() sim.Time { return b.spent }

// Exhausted reports whether the next attempt will be degraded.
func (b *Budget) Exhausted() bool { return b.spent >= b.p.Budget }

package control

import (
	"bufio"
	"encoding/json"
	"io"

	"perfiso/internal/sim"
)

// headerLine is the first JSONL line: the effective configuration and
// run totals, so a log is interpretable on its own.
type headerLine struct {
	Type     string  `json:"type"` // "controller"
	PeriodMS float64 `json:"period_ms"`
	Step     float64 `json:"step"`
	Decay    float64 `json:"decay"`
	Floor    float64 `json:"floor"`
	MaxBoost float64 `json:"max_boost"`
	HighBurn float64 `json:"high_burn"`
	LowBurn  float64 `json:"low_burn"`
	Ticks    int64   `json:"ticks"`
	Retunes  int64   `json:"retunes"`
	Boosts   int64   `json:"boosts"`
	Releases int64   `json:"releases"`
	Shed     int64   `json:"shed,omitempty"`
	Trips    int64   `json:"trips,omitempty"`
}

// actionLine is one controller decision.
type actionLine struct {
	Type   string  `json:"type"` // "control"
	TMS    float64 `json:"t_ms"`
	Action string  `json:"action"`
	Target string  `json:"target"`
	Old    float64 `json:"old"`
	New    float64 `json:"new"`
	Burn   float64 `json:"burn,omitempty"`
}

// WriteJSONL writes the controller's effective config, totals, and
// decision log as deterministic JSONL: same run, same bytes.
func WriteJSONL(w io.Writer, c *Controller) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	ms := func(t sim.Time) float64 { return float64(t) / float64(sim.Millisecond) }
	if err := enc.Encode(headerLine{
		Type:     "controller",
		PeriodMS: ms(c.cfg.Period),
		Step:     c.cfg.Step,
		Decay:    c.cfg.Decay,
		Floor:    c.cfg.Floor,
		MaxBoost: c.cfg.MaxBoost,
		HighBurn: c.cfg.HighBurn,
		LowBurn:  c.cfg.LowBurn,
		Ticks:    c.Stat.Ticks,
		Retunes:  c.Stat.Retunes,
		Boosts:   c.Stat.Boosts,
		Releases: c.Stat.Releases,
		Shed:     c.Stat.Shed,
		Trips:    c.Stat.Trips,
	}); err != nil {
		return err
	}
	for _, a := range c.actions {
		if err := enc.Encode(actionLine{
			Type:   "control",
			TMS:    ms(a.At),
			Action: a.Action,
			Target: a.Target,
			Old:    a.Old,
			New:    a.New,
			Burn:   a.Burn,
		}); err != nil {
			return err
		}
	}
	return bw.Flush()
}

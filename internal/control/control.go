// Package control closes the SLO feedback loop the measurement layers
// (internal/latency) left open: a deterministic, sim-clock-driven
// controller that watches each tenant SPU's per-window SLO burn rate
// and retunes entitlements — plus the overload-robustness machinery it
// falls back on when retuning is not enough (admission control with
// load shedding, deadline-aware retry budgets, and a per-disk circuit
// breaker).
//
// The actuator is the SPU's dynamic share (core.SPU.Share): every
// entitlement division — CPU homes, memory frames, disk bandwidth —
// runs off the share, so one retune moves all three resources
// coherently. The controller obeys three laws the invariant auditor
// re-verifies every tick:
//
//   - conservation: Σ share = Σ weight over active user SPUs, always —
//     a retune reshapes the machine split, it never mints capacity;
//   - floors: no SPU's share drops below Floor×weight, so a tenant's
//     minimum guarantee survives any amount of neighbor pressure;
//   - bounded actuation: the total share moved per tick is capped, so
//     one bad window cannot slam the machine into a new operating
//     point (the anti-oscillation half of AIMD).
//
// Anti-oscillation comes from three mechanisms working together: a
// dead band between HighBurn and LowBurn where the controller holds, a
// calm-streak requirement (Hold ticks) before boosted share is
// released, and multiplicative decay of released share (a calm tenant
// gives back half its boost per release, not all of it).
//
// Everything here runs on the simulation clock with no unforked
// randomness, so runs are byte-reproducible at any host parallelism
// and the controller state checkpoints byte-identically (Snapshot).
package control

import (
	"fmt"
	"sort"

	"perfiso/internal/core"
	"perfiso/internal/disk"
	"perfiso/internal/latency"
	"perfiso/internal/metrics"
	"perfiso/internal/sim"
	"perfiso/internal/snap"
	"perfiso/internal/trace"
)

// Config tunes the controller. The zero value with Enabled=false is a
// valid "controller off" configuration; withDefaults fills the rest.
type Config struct {
	// Enabled turns the closed loop on. Off, the kernel neither builds
	// a controller nor touches any SPU share, and every division is
	// bit-identical to the static weight-driven math.
	Enabled bool
	// Period is the controller tick period. Zero means "one latency
	// window": the controller evaluates each window exactly once, right
	// after it completes.
	Period sim.Time
	// Step is the additive-increase step as a fraction of the SPU's
	// weight (AIMD's AI term). Default 0.25.
	Step float64
	// Decay is the fraction of boosted share a calm SPU keeps per
	// release tick (AIMD's MD term applied to give-backs). Default 0.5.
	Decay float64
	// Floor is the minimum-guarantee floor as a fraction of weight.
	// Default 0.25.
	Floor float64
	// MaxBoost caps an SPU's share at this multiple of its weight.
	// Default 4.
	MaxBoost float64
	// HighBurn and LowBurn are the hysteresis thresholds on the
	// window's error-budget burn rate: at or above HighBurn the SPU is
	// hot (asks for more share); at or below LowBurn it is calm
	// (donates, and eventually releases boost); in between it holds.
	// Defaults 1.0 and 0.25.
	HighBurn float64
	LowBurn  float64
	// Hold is how many consecutive calm ticks an SPU must string
	// together before boosted share is released. Default 3.
	Hold int
	// MaxTickFrac bounds any SPU's per-tick share movement to this
	// fraction of its weight. Default 0.5.
	MaxTickFrac float64
	// ShedBurn is the burn rate beyond which a tenant whose share is
	// already at MaxBoost gets its admission cap tightened (load
	// shedding — the graceful-degradation fallback). Default 4.
	ShedBurn float64
	// MinInflight is the lowest admission cap shedding may impose, so
	// a degraded tenant always keeps some service. Default 4.
	MinInflight int
	// Retry is the deadline-aware retry policy handed to the fs, mem,
	// and kernel retry loops. Zero fields take DefaultRetryPolicy.
	Retry RetryPolicy
	// BreakerFail and BreakerSlow are the circuit-breaker trip points:
	// a disk whose injected failure probability is at least BreakerFail
	// or whose service-time degradation factor is at least BreakerSlow
	// is "open" and degraded-mode routing avoids it. Defaults 0.5, 4.
	BreakerFail float64
	BreakerSlow float64
}

func (c Config) withDefaults() Config {
	if c.Step <= 0 {
		c.Step = 0.25
	}
	if c.Decay <= 0 || c.Decay >= 1 {
		c.Decay = 0.5
	}
	if c.Floor <= 0 {
		c.Floor = 0.25
	}
	if c.MaxBoost <= 1 {
		c.MaxBoost = 4
	}
	if c.HighBurn <= 0 {
		c.HighBurn = 1.0
	}
	if c.LowBurn <= 0 {
		c.LowBurn = 0.25
	}
	if c.Hold <= 0 {
		c.Hold = 3
	}
	if c.MaxTickFrac <= 0 {
		c.MaxTickFrac = 0.5
	}
	if c.ShedBurn <= 0 {
		c.ShedBurn = 4
	}
	if c.MinInflight <= 0 {
		c.MinInflight = 4
	}
	c.Retry = c.Retry.withDefaults()
	if c.BreakerFail <= 0 {
		c.BreakerFail = 0.5
	}
	if c.BreakerSlow <= 0 {
		c.BreakerSlow = 4
	}
	return c
}

// Action is one controller decision, kept for the -controller JSONL
// artifact and tests that assert why a run adapted.
type Action struct {
	At     sim.Time
	Action string  // boost, release, restore, shed-cap, uncap, breaker-open, breaker-heal
	Target string  // "spu3" or "disk0"
	Old    float64 // share or cap before
	New    float64 // share or cap after
	Burn   float64 // window burn that triggered it (0 for breaker events)
}

// spuState is the controller's per-SPU memory between ticks.
type spuState struct {
	calm     int     // consecutive calm ticks
	cap      int     // admission cap; 0 = uncapped
	inflight int     // admitted, not yet finished
	shed     int64   // refused arrivals
	lastBurn float64 // burn the last tick acted on (stall carry-over)
}

// Stats counts controller activity for reports.
type Stats struct {
	Ticks    int64 `json:"ticks"`
	Retunes  int64 `json:"retunes"`  // ticks that moved at least one share
	Boosts   int64 `json:"boosts"`   // per-SPU share increases
	Releases int64 `json:"releases"` // per-SPU share decreases
	Shed     int64 `json:"shed"`     // refused arrivals, all SPUs
	Trips    int64 `json:"trips"`    // breaker openings
}

// Controller is the closed loop for one kernel.
type Controller struct {
	cfg   Config
	eng   *sim.Engine
	spus  *core.Manager
	lat   *latency.Registry
	disks []*disk.Disk
	// apply re-divides CPU homes, memory frames, and disk-bandwidth
	// shares after a retune (kernel.Rebalance plus disk shares).
	apply func()

	Trace   *trace.Tracer
	Metrics *metrics.Registry

	state      map[core.SPUID]*spuState
	openMask   []bool // per-disk breaker state as of the last tick
	lastWindow int    // last evaluated latency-window index
	lastDelta  float64

	actions []Action
	Stat    Stats
}

// New builds a controller. lat must be a live latency registry (the
// controller's only sensor is the per-window SLO burn); apply is
// invoked after every retune to push the new shares into the
// scheduler, memory manager, and disks.
func New(cfg Config, eng *sim.Engine, spus *core.Manager, lat *latency.Registry, disks []*disk.Disk, apply func()) *Controller {
	if lat == nil {
		panic("control: controller without a latency registry has no sensor")
	}
	cfg = cfg.withDefaults()
	if cfg.Period <= 0 {
		cfg.Period = lat.Window()
	}
	return &Controller{
		cfg:        cfg,
		eng:        eng,
		spus:       spus,
		lat:        lat,
		disks:      disks,
		apply:      apply,
		state:      make(map[core.SPUID]*spuState),
		openMask:   make([]bool, len(disks)),
		lastWindow: -1,
	}
}

// Config returns the effective (defaults-filled) configuration.
func (c *Controller) Config() Config { return c.cfg }

// LastTickDelta returns the total absolute share movement of the most
// recent tick — the quantity the bounded-actuation law constrains.
func (c *Controller) LastTickDelta() float64 { return c.lastDelta }

// Actions returns the decision log in decision order.
func (c *Controller) Actions() []Action { return c.actions }

// st returns (allocating) the per-SPU state.
func (c *Controller) st(id core.SPUID) *spuState {
	s := c.state[id]
	if s == nil {
		s = &spuState{}
		c.state[id] = s
	}
	return s
}

// Tick runs one controller period: refresh the circuit breaker from
// the disks' fault state, and — once per completed latency window —
// classify every SPU by burn rate, retune shares under the three laws,
// and adjust admission caps.
func (c *Controller) Tick() {
	c.Stat.Ticks++
	now := c.eng.Now()
	c.tickBreaker(now)
	width := c.lat.Window()
	if width <= 0 {
		return
	}
	idx := int(now/width) - 1
	if idx < 0 || idx == c.lastWindow {
		return
	}
	c.lastWindow = idx
	users := c.spus.ActiveUsers()
	burns := make([]float64, len(users))
	tracked := make([]bool, len(users))
	for i, u := range users {
		burns[i], tracked[i] = c.worstBurn(u.ID(), idx)
	}
	c.retune(now, users, burns, tracked)
	c.admission(now, users, burns, tracked)
}

// worstBurn returns the worst burn rate across the SPU's SLO trackers
// for window idx, and whether the SPU has any SLO tracker at all.
// Empty windows read as zero burn — a tenant with no traffic is calm,
// not NaN (the latency package guards the math). The one exception is
// a stalled tenant: a window with no completions at all while requests
// are in flight means the queue is wedged, not idle — the deepest
// overload produces the least evidence. That window inherits the last
// acted-on burn (at least HighBurn), so the controller keeps pushing
// instead of reading silence as recovery.
func (c *Controller) worstBurn(id core.SPUID, idx int) (burn float64, tracked bool) {
	observed := false
	for _, t := range c.lat.Trackers() {
		if t.SPU != id || !t.Obj.Valid() {
			continue
		}
		tracked = true
		ws := t.WindowAt(idx)
		if ws.Count+ws.Shed > 0 {
			observed = true
		}
		if ws.BurnRate > burn {
			burn = ws.BurnRate
		}
	}
	st := c.st(id)
	if tracked && !observed && st.inflight > 0 {
		burn = maxf(st.lastBurn, c.cfg.HighBurn)
	}
	st.lastBurn = burn
	return burn, tracked
}

// retune is the AIMD core. Classification: hot SPUs (burn >= HighBurn)
// request an additive boost sized by how hard they burn; calm SPUs
// (burn <= LowBurn) offer spare share above their floor, plus — after
// Hold consecutive calm ticks — a multiplicative release of share held
// above weight; everyone else holds. Requests clear against the single
// offer pool in two priority tiers: hot boosts first, then restores
// (calm SPUs climbing back toward weight) from whatever offer capacity
// the hot tier left. A calm SPU below its weight both requests restore
// and offers its above-floor headroom — a burning tenant outranks a
// calm one's recovery, which is what lets the largest donor keep
// donating even when it sits fractionally below its own weight. Every
// tier moves min(offered, requested), scaled proportionally, so Σ
// share is conserved exactly and floors and the per-tick movement
// bound hold by construction.
func (c *Controller) retune(now sim.Time, users []*core.SPU, burns []float64, tracked []bool) {
	n := len(users)
	if n == 0 {
		c.lastDelta = 0
		return
	}
	boost := make([]float64, n)   // tier-1 requests (hot SPUs)
	restore := make([]float64, n) // tier-2 requests (deficit SPUs climbing back)
	offer := make([]float64, n)   // offers (calm SPUs above floor)
	var pos1, pos2, neg float64
	for i, u := range users {
		w := u.Weight()
		share := u.Share()
		st := c.st(u.ID())
		maxMove := c.cfg.MaxTickFrac * w
		hot := tracked[i] && burns[i] >= c.cfg.HighBurn
		calm := burns[i] <= c.cfg.LowBurn // untracked SPUs always read calm
		switch {
		case hot:
			st.calm = 0
			// The additive step scales with how hard the budget is
			// burning — a tenant 10x over its budget cannot wait for
			// ten polite increments — but never past the per-tick
			// movement bound, so the actuation law still holds.
			step := c.cfg.Step * w * maxf(1, burns[i]/c.cfg.HighBurn)
			boost[i] = minf(step, c.cfg.MaxBoost*w-share, maxMove)
			if boost[i] < 0 {
				boost[i] = 0
			}
			pos1 += boost[i]
		case calm:
			st.calm++
			if share < w {
				restore[i] = minf(w-share, c.cfg.Step*w, maxMove)
				pos2 += restore[i]
			}
			negCap := minf(share-c.cfg.Floor*w, maxMove)
			if negCap <= 0 || st.calm < 2 {
				// One calm window right after running hot is noise, not
				// recovery; donating on it would see-saw against the
				// next boost. Two in a row earns donor status.
				break
			}
			dstep := c.cfg.Step * w
			if tracked[i] {
				// Fast attack, slow decay: an SPU with an SLO of its own
				// sheds share at a Decay-damped rate, so two tenants
				// elevated through the same fault window don't limit-
				// cycle by raiding each other. Untracked SPUs have no
				// tail to protect and donate the full step.
				dstep *= 1 - c.cfg.Decay
			}
			offer[i] = minf(dstep, negCap)
			if st.calm >= c.cfg.Hold && share > w {
				rel := minf((share-w)*(1-c.cfg.Decay), negCap-offer[i])
				if rel > 0 {
					offer[i] += rel
				}
			}
			neg += offer[i]
		default:
			st.calm = 0
		}
	}
	// Hot boosts draw on the offer pool first; restores get the rest.
	m1 := minf(pos1, neg)
	m2 := minf(pos2, neg-m1)
	boostScale := scale(m1, pos1)
	restScale := scale(m2, pos2)
	offScale := scale(m1+m2, neg)

	var moved float64
	var changed bool
	for i, u := range users {
		delta := boost[i]*boostScale + restore[i]*restScale - offer[i]*offScale
		if delta == 0 {
			continue
		}
		old := u.Share()
		u.SetShare(old + delta)
		moved += absf(delta)
		changed = true
		action := "release"
		if delta > 0 {
			if boost[i] > 0 {
				action = "boost"
			} else {
				action = "restore"
			}
			c.Stat.Boosts++
			c.Metrics.Counter(metrics.KeyControlBoosts, u.ID()).Inc()
		} else {
			c.Stat.Releases++
			c.Metrics.Counter(metrics.KeyControlReleases, u.ID()).Inc()
		}
		c.record(Action{
			At: now, Action: action, Target: fmt.Sprintf("spu%d", u.ID()),
			Old: old, New: u.Share(), Burn: burns[i],
		})
		c.Trace.Emitf(trace.Control, fmt.Sprintf("spu%d", u.ID()), action,
			"share %.3f -> %.3f (burn %.2f)", old, u.Share(), burns[i])
	}
	c.lastDelta = moved
	if !changed {
		return
	}
	// Exact conservation repair: float scaling leaves ~1e-16 residue
	// per tick, which would accumulate over long runs. Charge it to
	// the SPU with the most headroom above its floor (lowest ID wins
	// ties) so Σ share = Σ weight stays exact.
	var sum, wsum float64
	for _, u := range users {
		sum += u.Share()
		wsum += u.Weight()
	}
	if diff := sum - wsum; diff != 0 {
		best := -1
		var bestRoom float64
		for i, u := range users {
			if room := u.Share() - c.cfg.Floor*u.Weight(); best == -1 || room > bestRoom+1e-12 {
				best, bestRoom = i, room
			}
		}
		if best >= 0 && users[best].Share()-diff > 0 {
			users[best].SetShare(users[best].Share() - diff)
		}
	}
	c.Stat.Retunes++
	c.Metrics.Counter(metrics.KeyControlRetunes, metrics.NoSPU).Inc()
	if c.apply != nil {
		c.apply()
	}
}

// admission adjusts per-SPU caps: a tenant burning past ShedBurn with
// its share already at the MaxBoost ceiling has nothing left to gain
// from retuning, so its admission cap tightens (shedding keeps the
// served requests fast instead of letting the queue take everyone
// down). Calm tenants get their cap relaxed and eventually removed.
func (c *Controller) admission(now sim.Time, users []*core.SPU, burns []float64, tracked []bool) {
	for i, u := range users {
		if !tracked[i] {
			continue
		}
		st := c.st(u.ID())
		w := u.Weight()
		atCeiling := u.Share() >= c.cfg.MaxBoost*w-1e-9
		switch {
		case burns[i] >= c.cfg.ShedBurn && atCeiling:
			old := st.cap
			if old == 0 {
				st.cap = maxi(c.cfg.MinInflight, st.inflight*3/4)
			} else {
				st.cap = maxi(c.cfg.MinInflight, old*3/4)
			}
			if st.cap != old {
				c.record(Action{
					At: now, Action: "shed-cap", Target: fmt.Sprintf("spu%d", u.ID()),
					Old: float64(old), New: float64(st.cap), Burn: burns[i],
				})
				c.Trace.Emitf(trace.Control, fmt.Sprintf("spu%d", u.ID()), "shed-cap",
					"admission cap %d -> %d (burn %.2f)", old, st.cap, burns[i])
			}
		case burns[i] <= c.cfg.LowBurn && st.cap > 0:
			old := st.cap
			st.cap *= 2
			action := "uncap"
			if st.cap > st.inflight*4 || st.cap > 1<<10 {
				st.cap = 0
			} else {
				action = "relax-cap"
			}
			c.record(Action{
				At: now, Action: action, Target: fmt.Sprintf("spu%d", u.ID()),
				Old: float64(old), New: float64(st.cap), Burn: burns[i],
			})
			c.Trace.Emitf(trace.Control, fmt.Sprintf("spu%d", u.ID()), action,
				"admission cap %d -> %d", old, st.cap)
		}
	}
}

// Admit decides one arrival: true admits (and holds an in-flight
// slot until Done), false sheds. Shed accounting is the caller's job —
// the workload records the shed into its latency tracker so the
// refusal shows up as a bad observation, never a silent drop.
func (c *Controller) Admit(id core.SPUID) bool {
	st := c.st(id)
	if st.cap > 0 && st.inflight >= st.cap {
		st.shed++
		c.Stat.Shed++
		c.Metrics.Counter(metrics.KeyControlShed, id).Inc()
		return false
	}
	st.inflight++
	return true
}

// Done releases an admitted request's in-flight slot.
func (c *Controller) Done(id core.SPUID) {
	st := c.st(id)
	st.inflight--
	if st.inflight < 0 {
		panic(fmt.Sprintf("control: SPU %d in-flight went negative", id))
	}
}

// Inflight returns the SPU's current admitted-but-unfinished count.
func (c *Controller) Inflight(id core.SPUID) int { return c.st(id).inflight }

// Cap returns the SPU's admission cap (0 = uncapped).
func (c *Controller) Cap(id core.SPUID) int { return c.st(id).cap }

// tickBreaker refreshes the per-disk circuit breaker from the disks'
// fault state (set by internal/fault's injector) and records trips and
// heals. Breaker state is derived, not stored — it cannot drift from
// the machine, and it heals the instant the injector reverts.
func (c *Controller) tickBreaker(now sim.Time) {
	for i, d := range c.disks {
		open := d.FailProb() >= c.cfg.BreakerFail || d.Slow() >= c.cfg.BreakerSlow
		if open == c.openMask[i] {
			continue
		}
		c.openMask[i] = open
		if open {
			c.Stat.Trips++
			c.Metrics.Counter(metrics.KeyControlBreaker, metrics.NoSPU).Inc()
			c.record(Action{At: now, Action: "breaker-open", Target: fmt.Sprintf("disk%d", i)})
			c.Trace.Emitf(trace.Control, fmt.Sprintf("disk%d", i), "breaker-open",
				"fail-p %.2f slow x%.1f", d.FailProb(), d.Slow())
		} else {
			c.record(Action{At: now, Action: "breaker-heal", Target: fmt.Sprintf("disk%d", i)})
			c.Trace.Emitf(trace.Control, fmt.Sprintf("disk%d", i), "breaker-heal", "")
		}
	}
}

// BreakerOpen reports whether disk i is currently tripped. It reads
// the live fault state, so callers on the request path see a trip the
// moment the injector degrades the disk, not a tick later.
func (c *Controller) BreakerOpen(i int) bool {
	if c == nil || i < 0 || i >= len(c.disks) {
		return false
	}
	d := c.disks[i]
	return d.FailProb() >= c.cfg.BreakerFail || d.Slow() >= c.cfg.BreakerSlow
}

// Fallback returns the nearest healthy disk to route around tripped
// disk i (scanning round-robin from i+1, deterministic), or -1 when
// every disk is tripped and there is nowhere to fail over to.
func (c *Controller) Fallback(i int) int {
	n := len(c.disks)
	for j := 1; j < n; j++ {
		k := (i + j) % n
		if !c.BreakerOpen(k) {
			return k
		}
	}
	return -1
}

func (c *Controller) record(a Action) {
	c.actions = append(c.actions, a)
}

// Snapshot writes the controller's state for checkpoint comparison:
// the tick counters, every SPU's dynamic share and admission state,
// and the breaker mask. Two runs paused at the same instant produce
// identical bytes, which is what makes a mid-retune checkpoint
// replayable.
func (c *Controller) Snapshot(enc *snap.Encoder) {
	enc.Section("control")
	enc.Int("ticks", c.Stat.Ticks)
	enc.Int("retunes", c.Stat.Retunes)
	enc.Int("boosts", c.Stat.Boosts)
	enc.Int("releases", c.Stat.Releases)
	enc.Int("shed", c.Stat.Shed)
	enc.Int("trips", c.Stat.Trips)
	enc.Int("last_window", int64(c.lastWindow))
	enc.Float("last_delta", c.lastDelta)
	ids := make([]int, 0, len(c.state))
	for id := range c.state {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := c.state[core.SPUID(id)]
		pre := fmt.Sprintf("spu%d_", id)
		enc.Float(pre+"share", c.spus.Get(core.SPUID(id)).Share())
		enc.Int(pre+"calm", int64(st.calm))
		enc.Int(pre+"cap", int64(st.cap))
		enc.Int(pre+"inflight", int64(st.inflight))
		enc.Int(pre+"shed", st.shed)
		enc.Float(pre+"burn", st.lastBurn)
	}
	for i, open := range c.openMask {
		enc.Bool(fmt.Sprintf("breaker%d", i), open)
	}
	enc.Int("actions", int64(len(c.actions)))
}

func minf(vs ...float64) float64 {
	m := vs[0]
	for _, v := range vs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// scale returns moved/offered, the proportional fill of an offer pool.
func scale(moved, offered float64) float64 {
	if offered <= 0 {
		return 0
	}
	return moved / offered
}

package control

import (
	"math"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/disk"
	"perfiso/internal/latency"
	"perfiso/internal/sim"
)

const window = 500 * sim.Millisecond

// rig is a minimal controller harness: an engine, three SPUs (two
// SLO-tracked tenants and an untracked heavyweight donor), a latency
// registry, and no kernel.
type rig struct {
	eng     *sim.Engine
	spus    *core.Manager
	lat     *latency.Registry
	a, b, n *core.SPU
	ta, tb  *latency.Tracker
	c       *Controller
	applied int
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	r := &rig{eng: sim.NewEngine(), spus: core.NewManager()}
	r.a = r.spus.NewSPU("a", 1, core.ShareIdle)
	r.b = r.spus.NewSPU("b", 1, core.ShareIdle)
	r.n = r.spus.NewSPU("n", 4, core.ShareIdle)
	r.lat = latency.NewRegistry(window)
	slo := latency.SLO{Threshold: 20 * sim.Millisecond, Target: 0.95}
	r.ta = r.lat.Tracker("a", r.a.ID(), slo)
	r.tb = r.lat.Tracker("b", r.b.ID(), slo)
	cfg.Enabled = true
	r.c = New(cfg, r.eng, r.spus, r.lat, nil, func() { r.applied++ })
	return r
}

// fill records n completions of the given duration into tr, spread
// through window idx.
func fill(tr *latency.Tracker, idx, n int, d sim.Time) {
	start := sim.Time(idx) * window
	step := window / sim.Time(n+1)
	for i := 0; i < n; i++ {
		tr.Record(start+sim.Time(i+1)*step, d)
	}
}

// tick advances the engine so the controller evaluates window idx, and
// runs one controller tick.
func (r *rig) tick(idx int) {
	r.eng.RunUntil(sim.Time(idx+1) * window)
	r.c.Tick()
}

func (r *rig) sumShare() float64 {
	var s float64
	for _, u := range r.spus.ActiveUsers() {
		s += u.Share()
	}
	return s
}

func TestRetryBudgetSchedule(t *testing.T) {
	b := DefaultRetryPolicy().NewBudget()
	want := []sim.Time{5, 10, 20, 40, 80, 80, 80, 80}
	var spent sim.Time
	for i, w := range want {
		if b.Exhausted() {
			t.Fatalf("budget exhausted before attempt %d", i)
		}
		wait, degraded := b.Next()
		if degraded {
			t.Fatalf("attempt %d degraded early (spent %v)", i, spent)
		}
		if wait != w*sim.Millisecond {
			t.Fatalf("attempt %d backoff = %v, want %vms", i, wait, w)
		}
		spent += wait
		if b.Spent() != spent {
			t.Fatalf("Spent() = %v, want %v", b.Spent(), spent)
		}
	}
	if !b.Exhausted() {
		t.Fatal("budget not exhausted after the schedule")
	}
	// Past the budget every attempt is slow-lane, forever.
	for i := 0; i < 3; i++ {
		wait, degraded := b.Next()
		if !degraded || wait != 160*sim.Millisecond {
			t.Fatalf("post-budget attempt: wait %v degraded %v, want 160ms true", wait, degraded)
		}
	}
}

// A hot tenant gains share from calm donors; the three controller laws
// (conservation, floors, bounded per-tick movement) hold at every tick.
func TestRetuneBoostsHotConservesAndFloors(t *testing.T) {
	r := newRig(t, Config{})
	cfg := r.c.Config()
	wsum := r.sumShare()
	for idx := 1; idx <= 8; idx++ {
		fill(r.ta, idx, 40, 50*sim.Millisecond) // all miss: a is hot
		fill(r.tb, idx, 40, sim.Millisecond)    // all hit: b is calm
		r.tick(idx)
		if d := math.Abs(r.sumShare() - wsum); d > 1e-9 {
			t.Fatalf("tick %d: share sum drifted %g from weight sum", idx, d)
		}
		var bound float64
		for _, u := range r.spus.ActiveUsers() {
			if u.Share() < cfg.Floor*u.Weight()-1e-9 {
				t.Fatalf("tick %d: SPU %s share %.3f below floor %.3f",
					idx, u.Name(), u.Share(), cfg.Floor*u.Weight())
			}
			bound += cfg.MaxTickFrac * u.Weight()
		}
		if r.c.LastTickDelta() > bound+1e-9 {
			t.Fatalf("tick %d: moved %.3f share, bound %.3f", idx, r.c.LastTickDelta(), bound)
		}
	}
	if r.a.Share() <= r.a.Weight() {
		t.Fatalf("hot tenant share %.3f did not rise above weight", r.a.Share())
	}
	if r.n.Share() >= r.n.Weight() {
		t.Fatalf("untracked donor share %.3f did not fall below weight", r.n.Share())
	}
	if r.c.Stat.Boosts == 0 || r.c.Stat.Retunes == 0 || r.applied == 0 {
		t.Fatalf("no actuation: %+v applied=%d", r.c.Stat, r.applied)
	}
	if r.a.Share() > cfg.MaxBoost*r.a.Weight()+1e-9 {
		t.Fatalf("share %.3f above MaxBoost ceiling", r.a.Share())
	}
}

// Calm ticks after a hot spell release the boost gradually (hysteresis:
// a Hold-length calm streak before multiplicative decay) and the shares
// converge back toward the weights.
func TestRetuneReleasesAfterCalmStreak(t *testing.T) {
	r := newRig(t, Config{})
	for idx := 1; idx <= 6; idx++ {
		fill(r.ta, idx, 40, 50*sim.Millisecond)
		fill(r.tb, idx, 40, sim.Millisecond)
		r.tick(idx)
	}
	boosted := r.a.Share()
	if boosted <= r.a.Weight() {
		t.Fatalf("setup failed: a not boosted (%.3f)", boosted)
	}
	for idx := 7; idx <= 30; idx++ {
		fill(r.ta, idx, 40, sim.Millisecond) // a calm now
		fill(r.tb, idx, 40, sim.Millisecond)
		r.tick(idx)
	}
	if d := math.Abs(r.a.Share() - r.a.Weight()); d > 0.05 {
		t.Fatalf("a's share %.3f did not converge to weight after long calm", r.a.Share())
	}
	if d := math.Abs(r.n.Share() - r.n.Weight()); d > 0.2 {
		t.Fatalf("donor share %.3f did not recover toward weight", r.n.Share())
	}
	if r.c.Stat.Releases == 0 {
		t.Fatal("no releases recorded")
	}
}

// A window with zero completions while requests are in flight is a
// stalled queue, not a calm tenant: the controller must keep the burn
// signal (and keep boosting), not read silence as recovery.
func TestStallGuardHoldsBurnThroughEmptyWindows(t *testing.T) {
	r := newRig(t, Config{})
	// Window 1-2: a runs hot with completions to establish the signal.
	for idx := 1; idx <= 2; idx++ {
		fill(r.ta, idx, 40, 50*sim.Millisecond)
		fill(r.tb, idx, 40, sim.Millisecond)
		r.tick(idx)
	}
	if !r.c.Admit(r.a.ID()) {
		t.Fatal("uncapped Admit refused")
	}
	after2 := r.a.Share()
	// Windows 3-5: a's queue is wedged — in-flight work, no completions.
	for idx := 3; idx <= 5; idx++ {
		fill(r.tb, idx, 40, sim.Millisecond)
		r.tick(idx)
	}
	if r.a.Share() <= after2 {
		t.Fatalf("stalled tenant share fell or froze: %.3f -> %.3f", after2, r.a.Share())
	}
	r.c.Done(r.a.ID())
	// With the queue drained and truly no traffic, calm resumes and the
	// boost eventually releases.
	for idx := 6; idx <= 20; idx++ {
		fill(r.ta, idx, 40, sim.Millisecond)
		fill(r.tb, idx, 40, sim.Millisecond)
		r.tick(idx)
	}
	if r.a.Share() > after2 {
		t.Fatalf("share %.3f never released after the stall cleared", r.a.Share())
	}
}

// Shedding engages only when retuning is out of headroom: burn past
// ShedBurn with the share pinned at the MaxBoost ceiling tightens the
// admission cap, Admit refuses past it, and calm windows relax the cap
// back off.
func TestAdmissionShedWalk(t *testing.T) {
	r := newRig(t, Config{MaxBoost: 1.01})
	id := r.a.ID()
	// Pin a at its (tiny) ceiling with hot-but-below-ShedBurn windows
	// (15% misses at a 95% target is burn 3): the share boosts to the
	// cap without triggering shedding yet.
	for idx := 1; idx <= 3; idx++ {
		fill(r.ta, idx, 34, sim.Millisecond)
		fill(r.ta, idx, 6, 50*sim.Millisecond)
		fill(r.tb, idx, 40, sim.Millisecond)
		r.tick(idx)
	}
	if r.a.Share() < 1.01-1e-9 {
		t.Fatalf("setup: a's share %.5f not at ceiling", r.a.Share())
	}
	if got := r.c.Cap(id); got != 0 {
		t.Fatalf("cap = %d before any ShedBurn window, want 0", got)
	}
	for i := 0; i < 20; i++ {
		if !r.c.Admit(id) {
			t.Fatalf("admit %d refused before any cap", i)
		}
	}
	// A window with burn past ShedBurn: cap = 3/4 of in-flight.
	fill(r.ta, 4, 40, 50*sim.Millisecond)
	r.tick(4)
	if got := r.c.Cap(id); got != 15 {
		t.Fatalf("cap = %d, want 15 (3/4 of 20 in flight)", got)
	}
	if r.c.Admit(id) {
		t.Fatal("admit above cap succeeded")
	}
	if r.c.Stat.Shed != 1 || r.ShedOf(id) != 1 {
		t.Fatalf("shed not counted: stat %d, spu %d", r.c.Stat.Shed, r.ShedOf(id))
	}
	// Drain and run calm windows: the cap doubles away and clears.
	for i := 0; i < 20; i++ {
		r.c.Done(id)
	}
	for idx := 5; r.c.Cap(id) != 0; idx++ {
		if idx > 20 {
			t.Fatalf("cap never cleared (still %d)", r.c.Cap(id))
		}
		fill(r.ta, idx, 40, sim.Millisecond)
		fill(r.tb, idx, 40, sim.Millisecond)
		r.tick(idx)
	}
	if !r.c.Admit(id) {
		t.Fatal("admit refused after uncap")
	}
	r.c.Done(id)
}

// ShedOf reads the per-SPU shed count through the controller state.
func (r *rig) ShedOf(id core.SPUID) int64 { return r.c.st(id).shed }

// The breaker trips on fault-degraded disks, heals when the fault
// lifts, and Fallback routes round-robin to the nearest healthy disk.
func TestBreakerTripHealAndFallback(t *testing.T) {
	eng := sim.NewEngine()
	spus := core.NewManager()
	lat := latency.NewRegistry(window)
	disks := make([]*disk.Disk, 3)
	for i := range disks {
		disks[i] = disk.New(eng, disk.Params{}, disk.NewPos(), 0)
	}
	c := New(Config{Enabled: true}, eng, spus, lat, disks, nil)
	if c.BreakerOpen(0) || c.BreakerOpen(1) || c.BreakerOpen(2) {
		t.Fatal("breaker open on healthy disks")
	}
	disks[1].SetSlow(6)
	if !c.BreakerOpen(1) {
		t.Fatal("breaker did not trip on 6x slow disk")
	}
	c.Tick()
	if c.Stat.Trips != 1 {
		t.Fatalf("trips = %d, want 1", c.Stat.Trips)
	}
	if got := c.Fallback(1); got != 2 {
		t.Fatalf("Fallback(1) = %d, want 2", got)
	}
	disks[2].SetSlow(6)
	if got := c.Fallback(1); got != 0 {
		t.Fatalf("Fallback(1) = %d with disk2 also down, want 0", got)
	}
	disks[0].SetSlow(6)
	if got := c.Fallback(1); got != -1 {
		t.Fatalf("Fallback(1) = %d with all disks down, want -1", got)
	}
	disks[0].SetSlow(1)
	disks[1].SetSlow(1)
	disks[2].SetSlow(1)
	if c.BreakerOpen(1) {
		t.Fatal("breaker still open after heal")
	}
	c.Tick()
	if c.Stat.Trips != 1 {
		t.Fatalf("heal counted as a trip: %d", c.Stat.Trips)
	}
	// Out-of-range probes and nil controllers are safe no-ops.
	if c.BreakerOpen(-1) || c.BreakerOpen(99) {
		t.Fatal("out-of-range breaker probe reported open")
	}
	var nilc *Controller
	if nilc.BreakerOpen(0) {
		t.Fatal("nil controller breaker open")
	}
}

package stress

import (
	"fmt"
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/proc"
	"perfiso/internal/sim"
	"perfiso/internal/workload"
)

// TestRandomizedStress drives the whole kernel through dozens of
// randomly-generated (but deterministic) configurations — machines,
// schemes, SPU counts and weights, workload mixes, option knobs — and
// asserts the global invariants on each:
//
//   - every job completes (kernel.Run returning is itself the
//     no-deadlock assertion, backed by the horizon panic);
//   - response times are positive;
//   - the memory manager's accounting is internally consistent;
//   - the scheduler's CPU/queue state is consistent;
//   - all anonymous memory is released at exit.
func TestRandomizedStress(t *testing.T) {
	const runs = 24
	for i := 0; i < runs; i++ {
		i := i
		t.Run(fmt.Sprintf("seed%d", i), func(t *testing.T) {
			stressOne(t, uint64(1000+i))
		})
	}
}

func stressOne(t *testing.T, seed uint64) {
	t.Helper()
	rng := sim.NewRNG(seed)

	machines := []machine.Config{
		machine.Pmake8(), machine.CPUIsolation(),
		machine.MemoryIsolation(), machine.DiskIsolation(),
	}
	cfg := machines[rng.Intn(len(machines))]
	scheme := []core.Scheme{core.SMP, core.Quo, core.PIso}[rng.Intn(3)]
	opts := kernel.Options{
		Seed:      rng.Uint64() | 1,
		IPIRevoke: rng.Intn(2) == 0,
	}
	if rng.Intn(3) == 0 {
		opts.CacheReload = sim.Time(rng.Intn(3)) * sim.Millisecond
	}
	if rng.Intn(3) == 0 {
		opts.PageInsertStripes = 1
	}
	if rng.Intn(4) == 0 {
		opts.Reserve = 0.02 + 0.2*rng.Float64()
	}
	k := kernel.New(cfg, scheme, opts)

	nSPU := 1 + rng.Intn(4)
	var spus []*core.SPU
	for i := 0; i < nSPU; i++ {
		w := 1 + float64(rng.Intn(3))
		spus = append(spus, k.NewSPU(fmt.Sprintf("u%d", i), w))
	}
	k.Boot()

	var jobs []*proc.Process
	nJobs := 1 + rng.Intn(5)
	for j := 0; j < nJobs; j++ {
		spu := spus[rng.Intn(len(spus))].ID()
		name := fmt.Sprintf("job%d", j)
		switch rng.Intn(5) {
		case 0:
			p := workload.DefaultPmake()
			p.Parallel = 1 + rng.Intn(3)
			p.FilesPerCompile = 1 + rng.Intn(4)
			p.WSSPages = 20 + rng.Intn(200)
			p.ComputePerFile = sim.Time(20+rng.Intn(120)) * sim.Millisecond
			jobs = append(jobs, workload.Pmake(k, spu, name, p))
		case 1:
			bytes := int64(64*1024) << rng.Intn(5)
			jobs = append(jobs, workload.Copy(k, spu, name, workload.DefaultCopy(bytes)))
		case 2:
			p := workload.DefaultOcean()
			// An Ocean gang needs as many CPUs as processes; size it to
			// the smallest possible share.
			p.Procs = 1 + rng.Intn(2)
			p.Iterations = 1 + rng.Intn(8)
			p.WSSPages = 20 + rng.Intn(100)
			jobs = append(jobs, workload.Ocean(k, spu, name, p))
		case 3:
			p := workload.ComputeParams{
				Total:    sim.Time(50+rng.Intn(500)) * sim.Millisecond,
				Chunk:    sim.Time(10+rng.Intn(90)) * sim.Millisecond,
				WSSPages: 10 + rng.Intn(300),
			}
			jobs = append(jobs, workload.ComputeBound(k, spu, name, p))
		default:
			p := workload.ServerParams{
				Requests:     5 + rng.Intn(30),
				Interarrival: sim.Time(5+rng.Intn(30)) * sim.Millisecond,
				Service:      sim.Time(1+rng.Intn(5)) * sim.Millisecond,
			}
			srv := workload.Server(k, spu, name, p)
			jobs = append(jobs, srv.Root)
		}
	}
	for _, j := range jobs {
		k.Spawn(j)
	}
	end := k.Run() // horizon panic is the deadlock detector

	if end <= 0 {
		t.Fatal("no simulated time elapsed")
	}
	for _, j := range jobs {
		if j.State() != proc.Exited {
			t.Fatalf("job %q did not exit", j.Name)
		}
		if j.ResponseTime() <= 0 {
			t.Fatalf("job %q has response %v", j.Name, j.ResponseTime())
		}
	}
	if err := k.Memory().Audit(); err != nil {
		t.Fatal(err)
	}
	if err := k.Scheduler().Audit(); err != nil {
		t.Fatal(err)
	}
	// After every process exits, the only pages left are kernel pages
	// and buffer cache (clean or dirty): no anonymous leaks.
	anonLeak := 0
	_ = anonLeak
	kernelPages := int(k.SPUs().Kernel().Used(core.Memory))
	cached := k.FS().CachedPages()
	used := k.Memory().UsedPages()
	if used > kernelPages+cached {
		t.Fatalf("leak: %d pages used, %d kernel + %d cache accounted",
			used, kernelPages, cached)
	}
}

package fault_test

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/fault"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/sim"
	"perfiso/internal/trace"
	"perfiso/internal/workload"
)

// bootFaulted runs a two-SPU pmake under the plan and returns the
// kernel after completion plus the finish time.
func bootFaulted(t *testing.T, spec string) (*kernel.Kernel, sim.Time) {
	t.Helper()
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(machine.FaultIsolation(), core.PIso, kernel.Options{
		Faults:        plan,
		TraceCapacity: 256,
	})
	a := k.NewSPU("a", 1)
	b := k.NewSPU("b", 1)
	k.SetAffinity(a.ID(), 0)
	k.SetAffinity(b.ID(), 1)
	k.Boot()
	k.Spawn(workload.Pmake(k, a.ID(), "a", workload.DefaultPmake()))
	k.Spawn(workload.Pmake(k, b.ID(), "b", workload.DefaultPmake()))
	return k, k.Run()
}

func TestInjectorDrivesAllFaultKinds(t *testing.T) {
	// One event of every kind; the transient ones heal mid-run.
	spec := "disk-fail:0:100ms:1s:0.5," +
		"disk-slow:0:200ms:1s:8," +
		"cpu-slow:1:300ms:1s:0.25," +
		"cpu-off:2:400ms:1s," +
		"mem-loss:0:500ms:1s:0.2"
	k, end := bootFaulted(t, spec)
	if end <= 0 {
		t.Fatal("workload never finished")
	}
	in := k.Injector()
	if in == nil {
		t.Fatal("kernel booted with a plan but no injector")
	}
	if in.Stat.Injected != 5 {
		t.Fatalf("Injected = %d, want 5", in.Stat.Injected)
	}
	if in.Stat.Reverted != 5 {
		t.Fatalf("Reverted = %d, want 5 (every fault is transient)", in.Stat.Reverted)
	}
	if n := k.Tracer().Count(trace.Fault); n < 10 {
		t.Fatalf("trace recorded %d fault events, want >= 10 (inject + heal each)", n)
	}
	// Everything healed: the machine is whole again.
	if got := k.Scheduler().OnlineCPUs(); got != 8 {
		t.Fatalf("online CPUs = %d after heal, want 8", got)
	}
	if got := k.Memory().TotalPages(); got != machine.FaultIsolation().Pages() {
		t.Fatalf("total pages = %d after heal, want %d", got, machine.FaultIsolation().Pages())
	}
	if k.Disk(0).Slow() != 1 || k.Disk(0).FailProb() != 0 {
		t.Fatal("disk 0 still degraded after heal")
	}
	if err := k.Memory().Audit(); err != nil {
		t.Fatal(err)
	}
	if err := k.Scheduler().Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultedRunIsDeterministic(t *testing.T) {
	spec := "disk-fail:0:100ms:2s:0.4,cpu-off:1:200ms:1s,mem-loss:0:300ms:1s:0.25"
	_, end1 := bootFaulted(t, spec)
	k2, end2 := bootFaulted(t, spec)
	if end1 != end2 {
		t.Fatalf("same plan, same seed: finish times differ (%v vs %v)", end1, end2)
	}
	if k2.FS().Stat.Retries == 0 && k2.Memory().Stat.PageoutRetries == 0 {
		t.Log("note: no retries triggered; disk-fail window may have missed all IO")
	}
}

func TestFaultsSlowTheRunDown(t *testing.T) {
	_, clean := bootFaulted(t, "")
	// Leave only 2 of 8 CPUs for the 4 compile processes.
	_, faulted := bootFaulted(t, "cpu-off:0:100ms:0s,cpu-off:1:100ms:0s,cpu-off:2:100ms:0s,"+
		"cpu-off:3:100ms:0s,cpu-off:4:100ms:0s,cpu-off:5:100ms:0s")
	if faulted <= clean {
		t.Fatalf("6 of 8 CPUs gone permanently, yet run got no slower: %v vs %v", faulted, clean)
	}
}

func TestInjectorRejectsOutOfRangeTargets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("boot accepted a fault plan targeting a disk the machine lacks")
		}
	}()
	plan, err := fault.ParsePlan("disk-slow:7:1s:0s")
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(machine.FaultIsolation(), core.PIso, kernel.Options{Faults: plan})
	k.NewSPU("a", 1)
	k.Boot()
}

package fault_test

import (
	"testing"

	"perfiso/internal/core"
	"perfiso/internal/fault"
	"perfiso/internal/kernel"
	"perfiso/internal/machine"
	"perfiso/internal/sim"
	"perfiso/internal/workload"
)

// bootIdle boots a faulted kernel with no workload, so tests can step
// the clock to precise instants and inspect the degradation state
// between fault boundaries.
func bootIdle(t *testing.T, spec string) *kernel.Kernel {
	t.Helper()
	plan, err := fault.ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(machine.FaultIsolation(), core.PIso, kernel.Options{Faults: plan})
	k.NewSPU("a", 1)
	k.Boot()
	return k
}

// Overlapping faults on one resource: the most recent survivor governs,
// and healing one overlapping fault must not silently cancel the other.
func TestOverlappingDiskSlowStacks(t *testing.T) {
	// A: x8 over [100ms, 900ms); B: x2 over [300ms, 500ms) nested inside.
	k := bootIdle(t, "disk-slow:0:100ms:800ms:8,disk-slow:0:300ms:200ms:2")
	eng := k.Engine()
	eng.RunUntil(150 * sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 8 {
		t.Fatalf("after A injected: slow = %g, want 8", got)
	}
	eng.RunUntil(350 * sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 2 {
		t.Fatalf("while B overlaps: slow = %g, want 2 (most recent wins)", got)
	}
	eng.RunUntil(550 * sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 8 {
		t.Fatalf("after B healed: slow = %g, want 8 (A must survive)", got)
	}
	eng.RunUntil(950 * sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 1 {
		t.Fatalf("after A healed: slow = %g, want nominal 1", got)
	}
}

// The reverse overlap: the earlier fault heals while the later one is
// still active.
func TestOverlapHealOutlivedByLaterFault(t *testing.T) {
	// A: x8 over [100ms, 600ms); B: x2 over [200ms, 800ms).
	k := bootIdle(t, "disk-slow:0:100ms:500ms:8,disk-slow:0:200ms:600ms:2")
	eng := k.Engine()
	eng.RunUntil(650 * sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 2 {
		t.Fatalf("A healed under B: slow = %g, want 2", got)
	}
	eng.RunUntil(850 * sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 1 {
		t.Fatalf("both healed: slow = %g, want 1", got)
	}
}

// Two overlapping offline windows on the same CPU: the CPU stays down
// until the LAST window closes, and comes back exactly once.
func TestOverlappingCPUOfflineWindows(t *testing.T) {
	k := bootIdle(t, "cpu-off:1:100ms:400ms,cpu-off:1:300ms:400ms")
	eng := k.Engine()
	eng.RunUntil(550 * sim.Millisecond) // first window closed, second open
	if !k.Scheduler().Offline(1) {
		t.Fatal("healing the first window brought the CPU back under the second")
	}
	if got := k.Scheduler().OnlineCPUs(); got != 7 {
		t.Fatalf("online = %d, want 7", got)
	}
	eng.RunUntil(750 * sim.Millisecond) // both closed
	if k.Scheduler().Offline(1) {
		t.Fatal("CPU still offline after every window closed")
	}
	if got := k.Scheduler().OnlineCPUs(); got != 8 {
		t.Fatalf("online = %d, want 8", got)
	}
}

// Heal-before-inject at the same instant: fault A's recovery and fault
// B's injection land on the same tick. Plan order schedules A's revert
// first, so B's degradation must win the instant and persist.
func TestHealBeforeInjectSameInstant(t *testing.T) {
	k := bootIdle(t, "disk-slow:0:100ms:100ms:8,disk-slow:0:200ms:100ms:3")
	eng := k.Engine()
	eng.RunUntil(250 * sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 3 {
		t.Fatalf("after coincident heal+inject: slow = %g, want 3", got)
	}
	eng.RunUntil(350 * sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 1 {
		t.Fatalf("after B healed: slow = %g, want 1", got)
	}
	if in := k.Injector(); in.Stat.Injected != 2 || in.Stat.Reverted != 2 {
		t.Fatalf("stats = %+v, want 2 injected / 2 reverted", in.Stat)
	}
}

// A fault at t=0 applies before any workload runs.
func TestFaultAtTimeZero(t *testing.T) {
	k := bootIdle(t, "disk-slow:0:0s:100ms:2,cpu-off:3:0s:100ms")
	eng := k.Engine()
	eng.RunUntil(sim.Millisecond)
	if got := k.Disk(0).Slow(); got != 2 {
		t.Fatalf("t=0 disk fault not applied: slow = %g", got)
	}
	if !k.Scheduler().Offline(3) {
		t.Fatal("t=0 cpu-off not applied")
	}
	eng.RunUntil(150 * sim.Millisecond)
	if k.Disk(0).Slow() != 1 || k.Scheduler().Offline(3) {
		t.Fatal("t=0 faults did not heal")
	}
}

// A fault scheduled beyond the workload's end still fires during the
// post-exit drain, is counted, and heals — Run must not strand it.
func TestFaultBeyondRunEnd(t *testing.T) {
	plan, err := fault.ParsePlan("mem-loss:0:30s:1s:0.3")
	if err != nil {
		t.Fatal(err)
	}
	k := kernel.New(machine.FaultIsolation(), core.PIso, kernel.Options{Faults: plan})
	a := k.NewSPU("a", 1)
	k.Boot()
	p := workload.Pmake(k, a.ID(), "quick", workload.PmakeParams{
		Parallel: 1, FilesPerCompile: 1, ComputePerFile: 10 * sim.Millisecond,
		WSSPages: 50, SrcBytes: 8 * 1024, ObjBytes: 4 * 1024,
	})
	k.Spawn(p)
	end := k.Run()
	if end >= 30*sim.Second {
		t.Fatalf("workload ran until %v; the fault was not beyond its end", end)
	}
	in := k.Injector()
	if in.Stat.Injected != 1 || in.Stat.Reverted != 1 {
		t.Fatalf("drain-time fault stats = %+v, want 1/1", in.Stat)
	}
	if got := k.Memory().TotalPages(); got != machine.FaultIsolation().Pages() {
		t.Fatalf("pages = %d after drain-time heal, want %d", got, machine.FaultIsolation().Pages())
	}
}

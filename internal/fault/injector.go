package fault

import (
	"fmt"
	"sort"
	"strings"

	"perfiso/internal/disk"
	"perfiso/internal/mem"
	"perfiso/internal/metrics"
	"perfiso/internal/sched"
	"perfiso/internal/sim"
	"perfiso/internal/snap"
	"perfiso/internal/trace"
)

// Machine is the set of hooks the injector drives. The kernel fills it
// in at boot; tests may wire subsystems directly.
type Machine struct {
	Sched *sched.Scheduler
	Mem   *mem.Manager
	Disks []*disk.Disk
	// Rebalance re-divides CPU homes and memory entitlements after the
	// machine shrinks or regrows (kernel.Rebalance). May be nil.
	Rebalance func()
	// Trace, when non-nil, receives a trace.Fault event per injection
	// and recovery, so tests can assert why a run degraded.
	Trace *trace.Tracer
	// Metrics, when non-nil, counts injections and recoveries.
	Metrics *metrics.Registry
}

// Stats counts injector activity.
type Stats struct {
	Injected int64 // faults applied
	Reverted int64 // transient faults healed
}

// faultKey identifies the machine resource a fault degrades, so
// overlapping faults on one resource can be tracked together.
type faultKey struct {
	kind   Kind
	target int
}

// Injector schedules a Plan's faults onto the simulation clock.
type Injector struct {
	eng *sim.Engine
	m   Machine
	rng *sim.RNG // failure-decision stream, forked per faulted disk

	// active tracks, per resource, the faults currently applied in
	// injection order. When one of several overlapping faults heals,
	// the resource is re-degraded to the most recent survivor instead
	// of snapping back to nominal — healing fault A must not silently
	// cancel fault B. MemLoss is absent: frame losses are additive and
	// each heal restores exactly the frames its fault took.
	active map[faultKey][]*Event

	Stat Stats
}

// NewInjector creates an injector and schedules every event of the plan
// on the engine. rng seeds the transient-failure decisions; fork a
// dedicated stream so fault randomness cannot perturb anything else.
func NewInjector(eng *sim.Engine, m Machine, plan *Plan, rng *sim.RNG) *Injector {
	in := &Injector{eng: eng, m: m, rng: rng, active: make(map[faultKey][]*Event)}
	if plan == nil {
		return in
	}
	for _, e := range plan.Events {
		ev := e // a stable copy: its address is the fault's identity in the active set
		if err := in.check(ev); err != nil {
			panic(err)
		}
		// removed carries state from injection to recovery (MemLoss
		// must restore exactly the frames it took).
		removed := new(int)
		eng.Call(ev.At, "fault.inject", func() { in.apply(&ev, removed) })
		if ev.Duration > 0 {
			eng.Call(ev.At+ev.Duration, "fault.revert", func() { in.revert(&ev, removed) })
		}
	}
	return in
}

// check validates an event against the actual machine, so a bad spec
// fails loudly at boot rather than mid-run.
func (in *Injector) check(e Event) error {
	switch e.Kind {
	case DiskSlow, DiskFail:
		if e.Target >= len(in.m.Disks) {
			return fmt.Errorf("fault: disk %d out of range (machine has %d)", e.Target, len(in.m.Disks))
		}
	case CPUSlow, CPUOffline:
		if in.m.Sched == nil || e.Target >= in.m.Sched.NumCPUs() {
			return fmt.Errorf("fault: cpu %d out of range", e.Target)
		}
	case MemLoss:
		if in.m.Mem == nil {
			return fmt.Errorf("fault: mem-loss with no memory manager")
		}
	}
	return nil
}

func (in *Injector) apply(e *Event, removed *int) {
	in.Stat.Injected++
	in.m.Metrics.Counter(metrics.KeyFaultInjected, metrics.NoSPU).Inc()
	if e.Kind == MemLoss {
		n := int(e.Severity * float64(in.m.Mem.TotalPages()))
		*removed = n
		in.m.Mem.RemoveFrames(n)
		in.rebalance()
		in.emit(*e, "inject", "%d frames lost (%.0f%%)", n, e.Severity*100)
		return
	}
	k := faultKey{e.Kind, e.Target}
	in.active[k] = append(in.active[k], e)
	in.enact(k)
	switch e.Kind {
	case DiskSlow:
		in.emit(*e, "inject", "disk%d service times x%g", e.Target, e.Severity)
	case DiskFail:
		in.emit(*e, "inject", "disk%d fails transfers with p=%g", e.Target, e.Severity)
	case CPUSlow:
		in.emit(*e, "inject", "cpu%d straggles at %gx speed", e.Target, e.Severity)
	case CPUOffline:
		in.emit(*e, "inject", "cpu%d offline, %d remain", e.Target, in.m.Sched.OnlineCPUs())
	}
}

func (in *Injector) revert(e *Event, removed *int) {
	in.Stat.Reverted++
	in.m.Metrics.Counter(metrics.KeyFaultReverted, metrics.NoSPU).Inc()
	if e.Kind == MemLoss {
		in.m.Mem.AddFrames(*removed)
		in.rebalance()
		in.emit(*e, "heal", "%d frames restored", *removed)
		return
	}
	k := faultKey{e.Kind, e.Target}
	stack := in.active[k]
	for i, a := range stack {
		if a == e {
			in.active[k] = append(stack[:i], stack[i+1:]...)
			break
		}
	}
	in.enact(k)
	switch e.Kind {
	case DiskSlow:
		in.emit(*e, "heal", "disk%d at x%g service times", e.Target, in.m.Disks[e.Target].Slow())
	case DiskFail:
		in.emit(*e, "heal", "disk%d fails transfers with p=%g", e.Target, in.m.Disks[e.Target].FailProb())
	case CPUSlow:
		in.emit(*e, "heal", "cpu%d at %gx speed", e.Target, in.m.Sched.CPUSpeed(e.Target))
	case CPUOffline:
		in.emit(*e, "heal", "cpu%d online=%v, %d available", e.Target, !in.m.Sched.Offline(e.Target), in.m.Sched.OnlineCPUs())
	}
}

// enact drives the resource to match its active-fault stack: the most
// recently injected survivor wins, and an empty stack restores nominal
// operation.
func (in *Injector) enact(k faultKey) {
	stack := in.active[k]
	var cur *Event
	if len(stack) > 0 {
		cur = stack[len(stack)-1]
	}
	switch k.kind {
	case DiskSlow:
		factor := 1.0
		if cur != nil {
			factor = cur.Severity
		}
		in.m.Disks[k.target].SetSlow(factor)
	case DiskFail:
		if cur != nil {
			in.m.Disks[k.target].SetFault(cur.Severity, in.rng.Fork())
		} else {
			in.m.Disks[k.target].SetFault(0, nil)
		}
	case CPUSlow:
		speed := 1.0
		if cur != nil {
			speed = cur.Severity
		}
		in.m.Sched.SetCPUSpeed(k.target, speed)
	case CPUOffline:
		off := cur != nil
		if in.m.Sched.Offline(k.target) != off {
			in.m.Sched.SetOffline(k.target, off)
			in.rebalance()
		}
	}
}

// Snapshot writes the injector's state for checkpoint comparison.
func (in *Injector) Snapshot(enc *snap.Encoder) {
	enc.Section("fault")
	enc.Int("injected", in.Stat.Injected)
	enc.Int("reverted", in.Stat.Reverted)
	keys := make([]faultKey, 0, len(in.active))
	for k, stack := range in.active {
		if len(stack) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].target < keys[j].target
	})
	for _, k := range keys {
		specs := make([]string, len(in.active[k]))
		for i, e := range in.active[k] {
			specs[i] = e.String()
		}
		enc.Str(fmt.Sprintf("active_%s_%d", k.kind, k.target), strings.Join(specs, ","))
	}
}

func (in *Injector) rebalance() {
	if in.m.Rebalance != nil {
		in.m.Rebalance()
	}
}

func (in *Injector) emit(e Event, action, format string, args ...any) {
	in.m.Trace.Emitf(trace.Fault, e.Kind.String(), action, format, args...)
}

package fault

import (
	"fmt"

	"perfiso/internal/disk"
	"perfiso/internal/mem"
	"perfiso/internal/metrics"
	"perfiso/internal/sched"
	"perfiso/internal/sim"
	"perfiso/internal/trace"
)

// Machine is the set of hooks the injector drives. The kernel fills it
// in at boot; tests may wire subsystems directly.
type Machine struct {
	Sched *sched.Scheduler
	Mem   *mem.Manager
	Disks []*disk.Disk
	// Rebalance re-divides CPU homes and memory entitlements after the
	// machine shrinks or regrows (kernel.Rebalance). May be nil.
	Rebalance func()
	// Trace, when non-nil, receives a trace.Fault event per injection
	// and recovery, so tests can assert why a run degraded.
	Trace *trace.Tracer
	// Metrics, when non-nil, counts injections and recoveries.
	Metrics *metrics.Registry
}

// Stats counts injector activity.
type Stats struct {
	Injected int64 // faults applied
	Reverted int64 // transient faults healed
}

// Injector schedules a Plan's faults onto the simulation clock.
type Injector struct {
	eng *sim.Engine
	m   Machine
	rng *sim.RNG // failure-decision stream, forked per faulted disk

	Stat Stats
}

// NewInjector creates an injector and schedules every event of the plan
// on the engine. rng seeds the transient-failure decisions; fork a
// dedicated stream so fault randomness cannot perturb anything else.
func NewInjector(eng *sim.Engine, m Machine, plan *Plan, rng *sim.RNG) *Injector {
	in := &Injector{eng: eng, m: m, rng: rng}
	if plan == nil {
		return in
	}
	for _, e := range plan.Events {
		e := e
		if err := in.check(e); err != nil {
			panic(err)
		}
		// removed carries state from injection to recovery (MemLoss
		// must restore exactly the frames it took).
		removed := new(int)
		eng.Call(e.At, "fault.inject", func() { in.apply(e, removed) })
		if e.Duration > 0 {
			eng.Call(e.At+e.Duration, "fault.revert", func() { in.revert(e, removed) })
		}
	}
	return in
}

// check validates an event against the actual machine, so a bad spec
// fails loudly at boot rather than mid-run.
func (in *Injector) check(e Event) error {
	switch e.Kind {
	case DiskSlow, DiskFail:
		if e.Target >= len(in.m.Disks) {
			return fmt.Errorf("fault: disk %d out of range (machine has %d)", e.Target, len(in.m.Disks))
		}
	case CPUSlow, CPUOffline:
		if in.m.Sched == nil || e.Target >= in.m.Sched.NumCPUs() {
			return fmt.Errorf("fault: cpu %d out of range", e.Target)
		}
	case MemLoss:
		if in.m.Mem == nil {
			return fmt.Errorf("fault: mem-loss with no memory manager")
		}
	}
	return nil
}

func (in *Injector) apply(e Event, removed *int) {
	in.Stat.Injected++
	in.m.Metrics.Counter(metrics.KeyFaultInjected, metrics.NoSPU).Inc()
	switch e.Kind {
	case DiskSlow:
		in.m.Disks[e.Target].SetSlow(e.Severity)
		in.emit(e, "inject", "disk%d service times x%g", e.Target, e.Severity)
	case DiskFail:
		in.m.Disks[e.Target].SetFault(e.Severity, in.rng.Fork())
		in.emit(e, "inject", "disk%d fails transfers with p=%g", e.Target, e.Severity)
	case CPUSlow:
		in.m.Sched.SetCPUSpeed(e.Target, e.Severity)
		in.emit(e, "inject", "cpu%d straggles at %gx speed", e.Target, e.Severity)
	case CPUOffline:
		in.m.Sched.SetOffline(e.Target, true)
		in.rebalance()
		in.emit(e, "inject", "cpu%d offline, %d remain", e.Target, in.m.Sched.OnlineCPUs())
	case MemLoss:
		n := int(e.Severity * float64(in.m.Mem.TotalPages()))
		*removed = n
		in.m.Mem.RemoveFrames(n)
		in.rebalance()
		in.emit(e, "inject", "%d frames lost (%.0f%%)", n, e.Severity*100)
	}
}

func (in *Injector) revert(e Event, removed *int) {
	in.Stat.Reverted++
	in.m.Metrics.Counter(metrics.KeyFaultReverted, metrics.NoSPU).Inc()
	switch e.Kind {
	case DiskSlow:
		in.m.Disks[e.Target].SetSlow(1)
		in.emit(e, "heal", "disk%d back to nominal speed", e.Target)
	case DiskFail:
		in.m.Disks[e.Target].SetFault(0, nil)
		in.emit(e, "heal", "disk%d transfers reliable again", e.Target)
	case CPUSlow:
		in.m.Sched.SetCPUSpeed(e.Target, 1)
		in.emit(e, "heal", "cpu%d back to nominal speed", e.Target)
	case CPUOffline:
		in.m.Sched.SetOffline(e.Target, false)
		in.rebalance()
		in.emit(e, "heal", "cpu%d online, %d available", e.Target, in.m.Sched.OnlineCPUs())
	case MemLoss:
		in.m.Mem.AddFrames(*removed)
		in.rebalance()
		in.emit(e, "heal", "%d frames restored", *removed)
	}
}

func (in *Injector) rebalance() {
	if in.m.Rebalance != nil {
		in.m.Rebalance()
	}
}

func (in *Injector) emit(e Event, action, format string, args ...any) {
	in.m.Trace.Emitf(trace.Fault, e.Kind.String(), action, format, args...)
}

package fault

import (
	"strings"
	"testing"

	"perfiso/internal/sim"
)

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("disk-slow:0:2s:3s:4,cpu-off:1:1s:2s,mem-loss:0:5s:2s:0.25,disk-fail:1:500ms:0s,cpu-slow:3:1s:0s:0.5")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Events) != 5 {
		t.Fatalf("parsed %d events", len(p.Events))
	}
	// Events are sorted by injection time.
	for i := 1; i < len(p.Events); i++ {
		if p.Events[i-1].At > p.Events[i].At {
			t.Fatalf("events not time-sorted: %v", p.Events)
		}
	}
	first := p.Events[0]
	if first.Kind != DiskFail || first.Target != 1 || first.At != 500*sim.Millisecond {
		t.Fatalf("first event = %+v", first)
	}
	if first.Duration != 0 {
		t.Fatalf("duration 0s should mean permanent, got %v", first.Duration)
	}
	if first.Severity != 0.3 {
		t.Fatalf("disk-fail default severity = %g, want 0.3", first.Severity)
	}
	var off Event
	for _, e := range p.Events {
		if e.Kind == CPUOffline {
			off = e
		}
	}
	if off.Target != 1 || off.At != sim.Second || off.Duration != 2*sim.Second {
		t.Fatalf("cpu-off event = %+v", off)
	}
}

func TestParsePlanRoundTrips(t *testing.T) {
	spec := "disk-fail:1:500ms:0s,cpu-off:1:1s:2s,disk-slow:0:2s:3s,mem-loss:0:5s:2s:0.4"
	p, err := ParsePlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ParsePlan(p.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", p.String(), err)
	}
	if len(p2.Events) != len(p.Events) {
		t.Fatalf("round trip lost events: %q", p.String())
	}
	for i := range p.Events {
		if p.Events[i] != p2.Events[i] {
			t.Fatalf("round trip changed event %d: %+v vs %+v", i, p.Events[i], p2.Events[i])
		}
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, bad := range []string{
		"nope:0:1s:0s",          // unknown kind
		"disk-slow:0:1s",        // missing duration
		"disk-slow:x:1s:0s",     // bad target
		"disk-slow:0:soon:0s",   // bad time
		"disk-slow:0:1s:0s:0.5", // slowdown < 1
		"disk-fail:0:1s:0s:2",   // probability > 1
		"cpu-slow:0:1s:0s:1.5",  // straggler faster than nominal
		"mem-loss:0:1s:0s:1",    // whole memory
	} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		} else if !strings.Contains(err.Error(), "fault:") {
			t.Errorf("ParsePlan(%q): unhelpful error %v", bad, err)
		}
	}
	p, err := ParsePlan("  ")
	if err != nil || !p.Empty() {
		t.Fatalf("blank spec: %v, %+v", err, p)
	}
}

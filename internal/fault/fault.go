// Package fault injects hardware degradation into the simulated
// machine, deterministically: disk service-time inflation and transient
// request failures, CPU stragglers and full CPU offline/online, and
// memory-frame loss. Every fault is an event on the simulation clock
// (never wall time), and failure decisions draw from a forked sim.RNG
// stream, so a faulted run is exactly as reproducible as a clean one.
//
// The paper evaluates isolation under *load*; this package asks the
// follow-on question — does isolation hold under *faults*? — while
// exercising the same mechanisms the paper measures: CPU offlining
// re-runs AssignHomes and re-divides entitlements on the shrunken
// machine, frame loss drives the reclaim/revocation path, and disk
// failures exercise the retry-with-backoff degradation in fs, mem and
// kernel.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"perfiso/internal/sim"
)

// Kind is the class of injected fault.
type Kind int

const (
	// DiskSlow inflates every service time of the target disk by the
	// severity factor (default 4).
	DiskSlow Kind = iota
	// DiskFail makes each transfer on the target disk fail with the
	// severity probability (default 0.3); the graceful-degradation
	// layers retry with backoff.
	DiskFail
	// CPUSlow makes the target CPU a straggler running at the severity
	// fraction of nominal speed (default 0.25).
	CPUSlow
	// CPUOffline removes the target CPU entirely; homes and
	// entitlements are re-divided over the shrunken machine.
	CPUOffline
	// MemLoss removes the severity fraction of the machine's page
	// frames (default 0.25), triggering reclaim and re-division.
	MemLoss
)

var kindNames = map[Kind]string{
	DiskSlow:   "disk-slow",
	DiskFail:   "disk-fail",
	CPUSlow:    "cpu-slow",
	CPUOffline: "cpu-off",
	MemLoss:    "mem-loss",
}

// String names the kind as it appears in fault specs.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// defaultSeverity is used when a spec omits the severity field.
func (k Kind) defaultSeverity() float64 {
	switch k {
	case DiskSlow:
		return 4
	case DiskFail:
		return 0.3
	case CPUSlow:
		return 0.25
	case MemLoss:
		return 0.25
	default:
		return 0
	}
}

// Event is one scheduled fault.
type Event struct {
	Kind   Kind
	Target int      // disk or CPU index; ignored for MemLoss
	At     sim.Time // injection time on the simulation clock
	// Duration is how long the fault lasts; 0 means it is permanent
	// (never reverted).
	Duration sim.Time
	// Severity is the kind-specific magnitude: slowdown factor
	// (DiskSlow), failure probability (DiskFail), speed fraction
	// (CPUSlow), or fraction of frames lost (MemLoss). Unused for
	// CPUOffline.
	Severity float64
}

// String renders the event in the spec syntax it parses from.
func (e Event) String() string {
	s := fmt.Sprintf("%s:%d:%s:%s", e.Kind, e.Target,
		time.Duration(e.At), time.Duration(e.Duration))
	if e.Kind != CPUOffline && e.Severity != e.Kind.defaultSeverity() {
		s += fmt.Sprintf(":%g", e.Severity)
	}
	return s
}

// Plan is an ordered fault schedule.
type Plan struct {
	Events []Event
}

// String renders the plan as a spec string ParsePlan accepts.
func (p *Plan) String() string {
	if p == nil || len(p.Events) == 0 {
		return ""
	}
	parts := make([]string, len(p.Events))
	for i, e := range p.Events {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// Empty reports whether the plan schedules nothing.
func (p *Plan) Empty() bool { return p == nil || len(p.Events) == 0 }

// ParsePlan parses a fault schedule spec: comma-separated events of the
// form
//
//	kind:target:at:duration[:severity]
//
// where kind is disk-slow, disk-fail, cpu-slow, cpu-off or mem-loss;
// target is the disk or CPU index (use 0 for mem-loss); at and duration
// are Go durations ("2s", "500ms"; duration 0 means permanent); and
// severity is the kind-specific magnitude, defaulting to 4 (disk-slow),
// 0.3 (disk-fail), 0.25 (cpu-slow) and 0.25 (mem-loss). Example:
//
//	disk-slow:0:2s:3s:4,cpu-off:1:1s:2s,mem-loss:0:5s:2s:0.25
func ParsePlan(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return &Plan{}, nil
	}
	var p Plan
	for _, part := range strings.Split(spec, ",") {
		e, err := parseEvent(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		p.Events = append(p.Events, e)
	}
	// Deterministic injection order regardless of spec order.
	sort.SliceStable(p.Events, func(i, j int) bool { return p.Events[i].At < p.Events[j].At })
	return &p, nil
}

func parseEvent(s string) (Event, error) {
	fields := strings.Split(s, ":")
	if len(fields) != 4 && len(fields) != 5 {
		return Event{}, fmt.Errorf("fault: %q: want kind:target:at:duration[:severity]", s)
	}
	var e Event
	found := false
	for k, name := range kindNames {
		if fields[0] == name {
			e.Kind, found = k, true
			break
		}
	}
	if !found {
		return Event{}, fmt.Errorf("fault: unknown kind %q (want disk-slow, disk-fail, cpu-slow, cpu-off or mem-loss)", fields[0])
	}
	target, err := strconv.Atoi(fields[1])
	if err != nil || target < 0 {
		return Event{}, fmt.Errorf("fault: %q: bad target %q", s, fields[1])
	}
	e.Target = target
	at, err := time.ParseDuration(fields[2])
	if err != nil || at < 0 {
		return Event{}, fmt.Errorf("fault: %q: bad injection time %q", s, fields[2])
	}
	e.At = sim.Time(at)
	dur, err := time.ParseDuration(fields[3])
	if err != nil || dur < 0 {
		return Event{}, fmt.Errorf("fault: %q: bad duration %q", s, fields[3])
	}
	e.Duration = sim.Time(dur)
	e.Severity = e.Kind.defaultSeverity()
	if len(fields) == 5 {
		sev, err := strconv.ParseFloat(fields[4], 64)
		if err != nil {
			return Event{}, fmt.Errorf("fault: %q: bad severity %q", s, fields[4])
		}
		e.Severity = sev
	}
	if err := e.validate(); err != nil {
		return Event{}, fmt.Errorf("fault: %q: %v", s, err)
	}
	return e, nil
}

func (e Event) validate() error {
	switch e.Kind {
	case DiskSlow:
		if e.Severity < 1 {
			return fmt.Errorf("slowdown factor %g < 1", e.Severity)
		}
	case DiskFail:
		if e.Severity <= 0 || e.Severity > 1 {
			return fmt.Errorf("failure probability %g outside (0,1]", e.Severity)
		}
	case CPUSlow:
		if e.Severity <= 0 || e.Severity >= 1 {
			return fmt.Errorf("straggler speed %g outside (0,1)", e.Severity)
		}
	case MemLoss:
		if e.Severity <= 0 || e.Severity >= 1 {
			return fmt.Errorf("frame-loss fraction %g outside (0,1)", e.Severity)
		}
	}
	return nil
}
